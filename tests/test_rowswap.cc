/**
 * @file
 * Unit tests for the row-swap structures: the CAT, the row
 * indirection permutation and the swap-tracking counters.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/logging.hh"
#include "rowswap/cat.hh"
#include "rowswap/compact_rit.hh"
#include "rowswap/indirection.hh"
#include "rowswap/swap_counters.hh"

namespace srs
{
namespace
{

TEST(CatSizing, PowerOfTwoBuckets)
{
    CatSizing s;
    s.targetEntries = 1000;
    s.ways = 8;
    s.overProvision = 1.5;
    EXPECT_EQ(s.numBuckets(), 256u); // ceil(1500/8)=188 -> 256
    EXPECT_EQ(s.totalSlots(), 2048u);
}

Cat
makeCat(std::uint64_t entries = 64)
{
    CatSizing s;
    s.targetEntries = entries;
    return Cat(s, 42);
}

TEST(Cat, InsertLookupErase)
{
    Cat cat = makeCat();
    EXPECT_TRUE(cat.insert(10, 99));
    ASSERT_TRUE(cat.lookup(10).has_value());
    EXPECT_EQ(*cat.lookup(10), 99u);
    EXPECT_FALSE(cat.lookup(11).has_value());
    EXPECT_TRUE(cat.erase(10));
    EXPECT_FALSE(cat.erase(10));
    EXPECT_EQ(cat.size(), 0u);
}

TEST(Cat, UpdateInPlace)
{
    Cat cat = makeCat();
    cat.insert(10, 1);
    cat.insert(10, 2);
    EXPECT_EQ(*cat.lookup(10), 2u);
    EXPECT_EQ(cat.size(), 1u);
}

TEST(Cat, HoldsProvisionedLoad)
{
    Cat cat = makeCat(1000);
    for (RowId k = 0; k < 1000; ++k)
        ASSERT_TRUE(cat.insert(k, k + 1));
    EXPECT_EQ(cat.size(), 1000u);
    for (RowId k = 0; k < 1000; ++k)
        EXPECT_EQ(*cat.lookup(k), k + 1);
}

TEST(Cat, LockedBucketsRejectOverflow)
{
    // With every entry locked (same epoch), a saturated bucket must
    // reject rather than evict — the CAT security property.
    CatSizing s;
    s.targetEntries = 8;
    s.ways = 2;
    s.overProvision = 1.0;
    Cat cat(s, 7);
    std::uint32_t rejected = 0;
    for (RowId k = 0; k < 1000; ++k)
        rejected += cat.insert(k, k) ? 0 : 1;
    EXPECT_GT(rejected, 0u);
    EXPECT_LE(cat.size(), cat.capacity());
}

TEST(Cat, UnlockedEntriesEvictWithNotification)
{
    CatSizing s;
    s.targetEntries = 8;
    s.ways = 2;
    s.overProvision = 1.0;
    Cat cat(s, 7);
    for (RowId k = 0; k < 8; ++k)
        cat.insert(k, k);
    cat.unlockAll();
    std::vector<RowId> evicted;
    cat.setEvictHandler(
        [&](const Cat::Entry &e) { evicted.push_back(e.key); });
    // New inserts displace unlocked previous-epoch entries until the
    // table re-fills with locked current-epoch ones.
    std::uint32_t accepted = 0;
    for (RowId k = 100; k < 140; ++k)
        accepted += cat.insert(k, k) ? 1 : 0;
    EXPECT_FALSE(evicted.empty());
    EXPECT_GE(accepted, 8u);
    EXPECT_LE(cat.size(), cat.capacity());
}

TEST(Cat, ForEachVisitsAll)
{
    Cat cat = makeCat();
    for (RowId k = 0; k < 10; ++k)
        cat.insert(k, k * 2);
    std::uint32_t visited = 0;
    std::uint64_t sum = 0;
    cat.forEach([&](const Cat::Entry &e) {
        ++visited;
        sum += e.value;
    });
    EXPECT_EQ(visited, 10u);
    EXPECT_EQ(sum, 90u);
}

TEST(Indirection, IdentityByDefault)
{
    RowIndirection r(1024);
    EXPECT_EQ(r.remap(10), 10u);
    EXPECT_EQ(r.logicalAt(10), 10u);
    EXPECT_FALSE(r.displaced(10));
    EXPECT_EQ(r.entries(), 0u);
}

TEST(Indirection, SingleSwap)
{
    RowIndirection r(1024);
    r.swapPhysical(10, 20, 1);
    EXPECT_EQ(r.remap(10), 20u);
    EXPECT_EQ(r.remap(20), 10u);
    EXPECT_EQ(r.logicalAt(20), 10u);
    EXPECT_EQ(r.logicalAt(10), 20u);
    EXPECT_EQ(r.entries(), 2u);
}

TEST(Indirection, UnswapRestoresIdentity)
{
    RowIndirection r(1024);
    r.swapPhysical(10, 20, 1);
    r.swapPhysical(10, 20, 1);
    EXPECT_EQ(r.remap(10), 10u);
    EXPECT_EQ(r.remap(20), 20u);
    EXPECT_EQ(r.entries(), 0u);
}

TEST(Indirection, PaperFigure9Chain)
{
    // Section IV-C: A swaps with B, then A (now at b) swaps with C.
    // Using slot names a=0, b=1, c=2 for rows A=0, B=1, C=2:
    RowIndirection r(1024);
    r.swapPhysical(0, 1, 1);    // A <-> B
    r.swapPhysical(1, 2, 1);    // A (at b) <-> C
    EXPECT_EQ(r.remap(0), 2u);  // A at C's slot
    EXPECT_EQ(r.remap(2), 1u);  // C at B's slot
    EXPECT_EQ(r.remap(1), 0u);  // B at A's slot
    EXPECT_EQ(r.entries(), 3u);
}

TEST(Indirection, EpochTagsTrackStaleness)
{
    RowIndirection r(1024);
    r.swapPhysical(10, 20, 1);
    r.swapPhysical(30, 40, 2);
    EXPECT_EQ(r.staleCount(2), 2u); // the epoch-1 tuple
    EXPECT_EQ(r.staleCount(3), 4u);
    const RowId stale = r.findStale(2);
    EXPECT_TRUE(stale == 10 || stale == 20);
    EXPECT_EQ(r.findStale(1), kInvalidRow);
}

TEST(Indirection, PlaceBackResolvesChains)
{
    RowIndirection r(1024);
    r.swapPhysical(0, 1, 1);
    r.swapPhysical(1, 2, 1);
    r.swapPhysical(2, 3, 1);
    // Repeatedly send stale rows home, as the place-back loop does.
    int steps = 0;
    while (r.entries() > 0 && steps < 100) {
        RowId logical = r.findStale(2);
        if (logical == kInvalidRow) {
            // Chain remnants re-tagged by restores: finish them too.
            logical = r.findStale(3);
        }
        ASSERT_NE(logical, kInvalidRow);
        r.swapPhysical(r.remap(logical), logical, 2);
        ++steps;
    }
    EXPECT_EQ(r.entries(), 0u);
    for (RowId x = 0; x < 4; ++x)
        EXPECT_EQ(r.remap(x), x);
}

/** Property sweep: the indirection stays a permutation. */
class IndirectionProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(IndirectionProperty, RandomSwapsPreservePermutation)
{
    const std::uint32_t rows = 256;
    RowIndirection r(rows);
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        const RowId p = static_cast<RowId>(rng.nextBelow(rows));
        RowId q = static_cast<RowId>(rng.nextBelow(rows));
        if (p == q)
            q = (q + 1) % rows;
        r.swapPhysical(p, q, static_cast<std::uint32_t>(i / 100));
    }
    // Invariants: remap is injective and logicalAt inverts it.
    std::vector<bool> seen(rows, false);
    for (RowId logical = 0; logical < rows; ++logical) {
        const RowId phys = r.remap(logical);
        ASSERT_LT(phys, rows);
        ASSERT_FALSE(seen[phys]) << "remap not injective";
        seen[phys] = true;
        ASSERT_EQ(r.logicalAt(phys), logical);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndirectionProperty,
                         ::testing::Range(1, 21));


// ---------------------------------------------------------------------
// CompactRit — the Section VIII-4 single-table RIT.
// ---------------------------------------------------------------------

CompactRit
makeCompact(std::uint32_t rows = 256, std::uint64_t entries = 512,
            std::uint64_t seed = 9)
{
    CatSizing s;
    s.targetEntries = entries;
    return CompactRit(rows, s, seed);
}

TEST(CompactRit, IdentityByDefault)
{
    CompactRit r = makeCompact();
    for (RowId x : {0u, 1u, 100u, 255u}) {
        EXPECT_EQ(r.remap(x), x);
        EXPECT_EQ(r.logicalAt(x), x);
        EXPECT_FALSE(r.displaced(x));
    }
    EXPECT_EQ(r.entries(), 0u);
}

TEST(CompactRit, SingleSwapOneEntryPerDisplacedRow)
{
    CompactRit r = makeCompact();
    ASSERT_TRUE(r.swapPhysical(3, 7));
    EXPECT_EQ(r.remap(3), 7u);
    EXPECT_EQ(r.remap(7), 3u);
    EXPECT_EQ(r.logicalAt(3), 7u);
    EXPECT_EQ(r.logicalAt(7), 3u);
    // Split RIT would store 4 entries here; compact stores 2.
    EXPECT_EQ(r.entries(), 2u);
}

TEST(CompactRit, SwapBackRestoresIdentity)
{
    CompactRit r = makeCompact();
    ASSERT_TRUE(r.swapPhysical(3, 7));
    ASSERT_TRUE(r.swapPhysical(3, 7));
    EXPECT_EQ(r.entries(), 0u);
    EXPECT_EQ(r.remap(3), 3u);
    EXPECT_FALSE(r.displaced(7));
}

TEST(CompactRit, ChainedSwapsFormCycle)
{
    // SRS-style swap-only chain: A swaps with B, then A's new slot
    // swaps with C — a 3-cycle with one entry per member.
    CompactRit r = makeCompact();
    ASSERT_TRUE(r.swapPhysical(0, 1)); // A=0 now at slot 1
    ASSERT_TRUE(r.swapPhysical(1, 2)); // slot 1 (holding 0) <-> slot 2
    EXPECT_EQ(r.entries(), 3u);
    EXPECT_EQ(r.remap(0), 2u);
    EXPECT_EQ(r.logicalAt(2), 0u);
    EXPECT_EQ(r.logicalAt(1), 2u);
    EXPECT_EQ(r.logicalAt(0), 1u);
}

TEST(CompactRit, ReverseWalkCostGrowsWithChain)
{
    CompactRit r = makeCompact(256, 1024);
    // Drive one row through an ever-growing cycle.
    RowId slot = 0;
    for (RowId next = 1; next <= 40; ++next) {
        ASSERT_TRUE(r.swapPhysical(slot, next));
        slot = next;
    }
    const std::uint64_t before = r.maxWalkLength();
    r.logicalAt(slot); // deep probe into the 41-cycle
    EXPECT_GE(r.maxWalkLength(), before);
    EXPECT_GE(r.maxWalkLength(), 2u);
    EXPECT_GT(r.walks(), 0u);
    EXPECT_GE(r.totalWalkProbes(), r.walks());
}

TEST(CompactRit, StorageHalvedVsSplitConvention)
{
    CompactRit r = makeCompact(256, 512);
    // entries * (2 * rowBits + 7), capacity-based like Table IV.
    EXPECT_EQ(r.storageBits(17), r.capacity() * (2 * 17 + 7));
}

TEST(CompactRit, RejectsWhenSaturatedAndRollsBack)
{
    CatSizing s;
    s.targetEntries = 4;
    s.ways = 1;
    s.overProvision = 1.0;
    CompactRit r(4096, s, 3);
    std::uint64_t ok = 0;
    Rng rng(11);
    for (int i = 0; i < 600; ++i) {
        const RowId p = static_cast<RowId>(rng.nextBelow(4096));
        RowId q = static_cast<RowId>(rng.nextBelow(4096));
        if (p == q)
            q = (q + 1) % 4096;
        ok += r.swapPhysical(p, q) ? 1 : 0;
    }
    EXPECT_GT(r.rejects(), 0u);
    EXPECT_GT(ok, 0u);
    // Rolled-back swaps must leave a consistent permutation.
    std::vector<bool> seen(4096, false);
    for (RowId logical = 0; logical < 4096; ++logical) {
        const RowId phys = r.remap(logical);
        ASSERT_FALSE(seen[phys]);
        seen[phys] = true;
    }
}

TEST(CompactRit, UnlockAllowsEvictionReuse)
{
    CatSizing s;
    s.targetEntries = 8;
    s.ways = 2;
    s.overProvision = 1.0;
    CompactRit r(4096, s, 3);
    std::uint64_t rejectsLocked = 0;
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const RowId p = static_cast<RowId>(rng.nextBelow(4096));
        RowId q = static_cast<RowId>(rng.nextBelow(4096));
        if (p == q)
            continue;
        if (!r.swapPhysical(p, q))
            ++rejectsLocked;
    }
    EXPECT_GT(rejectsLocked, 0u);
    r.unlockAll();
    // After unlocking, inserts may evict stale entries again.
    EXPECT_TRUE(r.swapPhysical(4000, 4001) ||
                r.swapPhysical(4002, 4003));
}

/** Equivalence sweep: CompactRit mirrors RowIndirection exactly. */
class CompactRitEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(CompactRitEquivalence, MatchesExactPermutation)
{
    const std::uint32_t rows = 128;
    RowIndirection exact(rows);
    CompactRit compact = makeCompact(rows, 4096, GetParam());
    Rng rng(GetParam() * 77 + 1);
    for (int i = 0; i < 400; ++i) {
        const RowId p = static_cast<RowId>(rng.nextBelow(rows));
        RowId q = static_cast<RowId>(rng.nextBelow(rows));
        if (p == q)
            q = (q + 1) % rows;
        exact.swapPhysical(p, q, 1);
        ASSERT_TRUE(compact.swapPhysical(p, q));
    }
    std::uint64_t displacedRows = 0;
    for (RowId x = 0; x < rows; ++x) {
        ASSERT_EQ(compact.remap(x), exact.remap(x)) << "row " << x;
        ASSERT_EQ(compact.logicalAt(x), exact.logicalAt(x));
        ASSERT_EQ(compact.displaced(x), exact.displaced(x));
        displacedRows += exact.displaced(x) ? 1 : 0;
    }
    // One entry per displaced row: half of the split organization.
    EXPECT_EQ(compact.entries(), displacedRows);
    EXPECT_EQ(exact.entries(), displacedRows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactRitEquivalence,
                         ::testing::Range(1, 13));

TEST(SwapCounters, AccumulatesWithinEpoch)
{
    SwapTrackingCounters c(1024);
    EXPECT_EQ(c.recordSwap(5, 1, 200), 200u);
    EXPECT_EQ(c.recordSwap(5, 1, 201), 401u);
    EXPECT_EQ(c.countOf(5, 1), 401u);
}

TEST(SwapCounters, EpochMismatchResets)
{
    SwapTrackingCounters c(1024);
    c.recordSwap(5, 1, 200);
    EXPECT_EQ(c.countOf(5, 2), 0u);
    EXPECT_EQ(c.recordSwap(5, 2, 100), 100u);
}

TEST(SwapCounters, SaturatesAtFieldWidth)
{
    SwapTrackingCounters c(1024, 19, 13);
    const std::uint32_t maxCount = (1u << 13) - 1;
    c.recordSwap(5, 1, maxCount);
    EXPECT_EQ(c.recordSwap(5, 1, 100), maxCount);
}

TEST(SwapCounters, GlobalResetClears)
{
    SwapTrackingCounters c(1024);
    c.recordSwap(5, 1, 200);
    c.resetAll();
    EXPECT_EQ(c.countOf(5, 1), 0u);
    EXPECT_EQ(c.stats().get("global_resets"), 1u);
}

TEST(SwapCounters, PaperStorageNumbers)
{
    // Section IV-F: 128K rows x 32 bits = 512KB per bank, held in
    // sixty-four 8KB counter rows (0.05% of capacity).
    SwapTrackingCounters c(128 * 1024);
    EXPECT_EQ(c.reservedBytesPerBank(), 512u * 1024);
    EXPECT_EQ(c.counterRows(8192), 64u);
    EXPECT_EQ(c.epochIdLimit(), 1u << 19);
}

TEST(SwapCounters, FieldWidthValidated)
{
    EXPECT_THROW(SwapTrackingCounters(16, 25, 13), FatalError);
}

} // namespace
} // namespace srs
