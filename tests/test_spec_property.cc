/**
 * @file
 * Property-style coverage of the experiment-identity grammar
 * (sim/workload_spec.hh): for a few hundred seeded-RNG-generated
 * SystemAxes and WorkloadSpec values, `parse(field(x)) == x` holds
 * exactly — the spellings these types put into CSV identity columns
 * and shard manifests are loss-free — and every malformed spelling
 * dies with a fatal() that names the offending input *verbatim* and
 * lists the accepted spellings (table-driven negative cases).
 *
 * The generators only produce *valid* values (e.g. effective
 * tRC >= tRCD + tRP); invalid combinations are covered by the
 * negative tables, where the property is the diagnostic, not the
 * roundtrip.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/sweep.hh"
#include "sim/workload_spec.hh"
#include "trace/generators.hh"
#include "trace/profiles.hh"

namespace srs
{
namespace
{

constexpr int kIterations = 300;

/**
 * Draw one valid SystemAxes: random policy and preset, a random
 * in-bounds organization triple with probability ~1/2 (sometimes
 * landing on the default 2x1x16, which field() must canonicalize
 * away), each timing knob overridden with probability ~1/2.  tRC
 * (when overridden) is drawn at or above the effective tRCD + tRP so
 * the combination always validates.
 */
SystemAxes
randomAxes(Rng &rng)
{
    SystemAxes axes;
    axes.pagePolicy =
        rng.nextBool(0.5) ? PagePolicy::Closed : PagePolicy::Open;
    axes.preset =
        rng.nextBool(0.5) ? DramPreset::Ddr4 : DramPreset::Ddr5;
    if (rng.nextBool(0.5)) {
        static const std::uint32_t chs[] = {1, 2, 4, 8};
        static const std::uint32_t rks[] = {1, 2, 4};
        static const std::uint32_t bks[] = {4, 8, 16, 32, 64};
        axes.orgChannels = chs[rng.nextBelow(std::size(chs))];
        axes.orgRanks = rks[rng.nextBelow(std::size(rks))];
        axes.orgBanks = bks[rng.nextBelow(std::size(bks))];
    }
    if (rng.nextBool(0.5))
        axes.tRcdNs = static_cast<std::uint32_t>(rng.nextRange(1, 100));
    if (rng.nextBool(0.5))
        axes.tRpNs = static_cast<std::uint32_t>(rng.nextRange(1, 100));
    // Effective tRCD/tRP fall back to the preset default (14 ns in
    // both presets) when not overridden; when their sum outgrows the
    // default tRC (45 ns), a tRC override is forced so the generated
    // axes always validate.
    const std::uint32_t trcd = axes.tRcdNs ? axes.tRcdNs : 14;
    const std::uint32_t trp = axes.tRpNs ? axes.tRpNs : 14;
    if (trcd + trp > 45 || rng.nextBool(0.5)) {
        axes.tRcNs = static_cast<std::uint32_t>(
            rng.nextRange(trcd + trp, trcd + trp + 400));
    }
    if (rng.nextBool(0.5))
        axes.tRefiNs =
            static_cast<std::uint32_t>(rng.nextRange(1, 100'000));
    if (rng.nextBool(0.5))
        axes.tRfcNs =
            static_cast<std::uint32_t>(rng.nextRange(1, 10'000));
    return axes;
}

/** Draw one trace path from the CSV/manifest-safe character set. */
std::string
randomTracePath(Rng &rng)
{
    static const char safe[] =
        "abcdefghijklmnopqrstuvwxyz0123456789_.-";
    std::string path = "/";
    const std::uint64_t len = rng.nextRange(1, 24);
    for (std::uint64_t i = 0; i < len; ++i) {
        if (rng.nextBool(0.15)) {
            path += '/';
            continue;
        }
        path += safe[rng.nextBelow(sizeof(safe) - 1)];
    }
    return path;
}

/**
 * Draw one valid GeneratorSpec across all three families: a Zipf or
 * hotspot victim, optionally wrapped into a blend by a nonzero
 * attack rate.  Every knob spans its full accepted range so the
 * canonical decimal formatter (trailing-zero stripping, whole-number
 * collapse) is exercised at its edges.
 */
GeneratorSpec
randomGenerator(Rng &rng)
{
    GeneratorSpec gen;
    if (rng.nextBool(0.5)) {
        gen.family = GeneratorFamily::Zipf;
        gen.rows =
            static_cast<std::uint32_t>(rng.nextRange(1, 65536));
        gen.skewMilli =
            static_cast<std::uint32_t>(rng.nextRange(0, 8000));
    } else {
        gen.family = GeneratorFamily::Hotspot;
        gen.rows =
            static_cast<std::uint32_t>(rng.nextRange(1, 65536));
        gen.hotFracMilli =
            static_cast<std::uint32_t>(rng.nextRange(1, 999));
        gen.hotProbMilli =
            static_cast<std::uint32_t>(rng.nextRange(1, 1000));
        if (rng.nextBool(0.5))
            gen.shiftCycles = rng.nextRange(1, 1'000'000'000);
    }
    if (rng.nextBool(0.5))
        gen.attackRateMilli =
            static_cast<std::uint32_t>(rng.nextRange(1, 999));
    return gen;
}

TEST(SpecProperty, SystemAxesParseIsTheExactInverseOfField)
{
    Rng rng(0xA85e5);
    for (int i = 0; i < kIterations; ++i) {
        const SystemAxes axes = randomAxes(rng);
        const std::string spelling = axes.field();
        SCOPED_TRACE(spelling);
        const SystemAxes back = SystemAxes::parse(spelling);
        EXPECT_EQ(back, axes);
        // field() is canonical: re-serializing changes nothing.
        EXPECT_EQ(back.field(), spelling);
        // The spelling survives a CSV cell and a manifest value.
        EXPECT_EQ(spelling.find(','), std::string::npos);
        EXPECT_EQ(spelling.find('#'), std::string::npos);
        EXPECT_EQ(spelling.find(' '), std::string::npos);
    }
}

TEST(SpecProperty, WorkloadSpecParseIsTheExactInverseOfLabel)
{
    Rng rng(0x10ad5);
    const std::vector<WorkloadProfile> &profiles = allProfiles();
    for (int i = 0; i < kIterations; ++i) {
        WorkloadSpec spec;
        if (rng.nextBool(0.5)) {
            spec = WorkloadSpec::synthetic(
                profiles[rng.nextBelow(profiles.size())].name);
        } else {
            const std::size_t count = rng.nextBool(0.5) ? 1 : 8;
            std::vector<std::string> paths;
            for (std::size_t p = 0; p < count; ++p)
                paths.push_back(randomTracePath(rng));
            spec = WorkloadSpec::traceFiles(std::move(paths));
        }
        const std::string spelling = spec.label();
        SCOPED_TRACE(spelling);
        const WorkloadSpec back = WorkloadSpec::parse(spelling, 8);
        EXPECT_EQ(back, spec);
        EXPECT_EQ(back.label(), spelling);
        EXPECT_EQ(spelling.find(','), std::string::npos);
    }
}

TEST(SpecProperty, GeneratorSpecParseIsTheExactInverseOfLabel)
{
    Rng rng(0x21Bf);
    for (int i = 0; i < kIterations; ++i) {
        const GeneratorSpec gen = randomGenerator(rng);
        const std::string spelling = gen.label();
        SCOPED_TRACE(spelling);
        const GeneratorSpec back = GeneratorSpec::parse(spelling);
        EXPECT_EQ(back, gen);
        // label() is canonical: re-serializing changes nothing.
        EXPECT_EQ(back.label(), spelling);
        // The spelling survives a CSV cell and a manifest value.
        EXPECT_EQ(spelling.find(','), std::string::npos);
        EXPECT_EQ(spelling.find('#'), std::string::npos);
        EXPECT_EQ(spelling.find(' '), std::string::npos);
        // The same spelling routes through the WorkloadSpec grammar
        // (the `--workloads` list and the manifest `workloads=` key).
        const WorkloadSpec spec = WorkloadSpec::parse(spelling, 8);
        EXPECT_EQ(spec.kind, WorkloadKind::Generator);
        EXPECT_EQ(spec.generator, gen);
        EXPECT_EQ(spec.label(), spelling);
    }
}

TEST(SpecProperty, GeneratorDecimalKnobsKeepExactMilliResolution)
{
    // The fractional knobs are stored in exact milli units: any
    // spelling with at most three fractional digits roundtrips to
    // the canonical form with trailing zeros stripped, never through
    // a lossy double.
    const GeneratorSpec a = GeneratorSpec::parse("zipf:4096@s=0.990");
    EXPECT_EQ(a.skewMilli, 990u);
    EXPECT_EQ(a.label(), "zipf:4096@s=0.99");
    const GeneratorSpec b = GeneratorSpec::parse("zipf:4096@s=1.000");
    EXPECT_EQ(b.skewMilli, 1000u);
    EXPECT_EQ(b.label(), "zipf:4096@s=1");
    const GeneratorSpec c =
        GeneratorSpec::parse("hotspot:64@hot=0.100@p=1.0");
    EXPECT_EQ(c.hotFracMilli, 100u);
    EXPECT_EQ(c.hotProbMilli, 1000u);
    EXPECT_EQ(c.label(), "hotspot:64@hot=0.1@p=1");
}

TEST(SpecProperty, MixSpecsAreDeterministicPureFunctionsOfTheIndex)
{
    // MIX labels are grid-generated (`--mix`), never spelled in
    // `--workloads`, so their roundtrip property is construction
    // determinism: the same index always draws the same per-core
    // profile list under the same label.
    Rng rng(0x3717);
    for (int i = 0; i < kIterations; ++i) {
        const std::uint32_t index =
            static_cast<std::uint32_t>(rng.nextBelow(1000));
        const WorkloadSpec a = WorkloadSpec::mix(index, 8);
        const WorkloadSpec b = WorkloadSpec::mix(index, 8);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a.label(), "mix" + std::to_string(index));
        EXPECT_EQ(a.mixProfiles.size(), 8u);
    }
}

/** One malformed-spelling case: input + substrings the fatal must name. */
struct NegativeCase
{
    const char *input;
    std::vector<const char *> needles;
};

TEST(SpecProperty, MalformedAxesSpellingsNameInputAndGrammar)
{
    // Every fatal must quote the offending input verbatim and list
    // the accepted spellings, so a typo'd --page-policy or manifest
    // value is self-explanatory.
    const NegativeCase cases[] = {
        {"half-open", {"half-open", "closed|open"}},
        {"", {"closed|open"}},
        {"open@ddr3", {"open@ddr3", "@ddr4|@ddr5"}},
        {"open@tras=30", {"open@tras=30", "@trc=NS", "@trfc=NS"}},
        {"open@trc=", {"open@trc=", "1..10000"}},
        {"open@trc=0", {"open@trc=0", "1..10000"}},
        {"open@trc=48ns", {"open@trc=48ns", "1..10000"}},
        {"open@trc=999999", {"open@trc=999999", "1..10000"}},
        {"open@trefi=200000", {"open@trefi=200000", "1..100000"}},
        {"open@trc=48@trc=50", {"open@trc=48@trc=50", "repeated"}},
        {"open@trefi=3900@trc=48",
         {"open@trefi=3900@trc=48", "out-of-order"}},
        {"open@trc=48@ddr5",
         {"open@trc=48@ddr5", "right after the policy"}},
        {"open@org=0x1x16",
         {"open@org=0x1x16", "0x1x16", "CxRxB", "channels 1..8"}},
        {"open@org=2x2", {"open@org=2x2", "CxRxB", "banks 4..64"}},
        {"open@org=2x2x128",
         {"open@org=2x2x128", "2x2x128", "banks 4..64"}},
        {"open@org=axbxc",
         {"open@org=axbxc", "axbxc", "power-of-two"}},
        {"open@ddr5@org=3x1x16",
         {"open@ddr5@org=3x1x16", "3x1x16", "power-of-two"}},
        {"open@org=2x2x32@org=2x2x32",
         {"open@org=2x2x32@org=2x2x32", "repeated"}},
        {"open@trc=48@org=2x2x32",
         {"open@trc=48@org=2x2x32", "out-of-order",
          "right after the policy"}},
        {"closed@trc=20", {"closed@trc=20", "tRCD + tRP"}},
        {"closed@ddr5@trcd=40@trp=40",
         {"closed@ddr5@trcd=40@trp=40", "tRCD + tRP"}},
    };
    for (const NegativeCase &c : cases) {
        SCOPED_TRACE(c.input);
        try {
            SystemAxes::parse(c.input);
            FAIL() << "'" << c.input << "' was not rejected";
        } catch (const FatalError &err) {
            const std::string msg = err.what();
            for (const char *needle : c.needles)
                EXPECT_NE(msg.find(needle), std::string::npos)
                    << "message lacks '" << needle << "': " << msg;
        }
    }
}

TEST(SpecProperty, MalformedWorkloadSpellingsNameInputAndGrammar)
{
    const NegativeCase cases[] = {
        {"trace:", {"trace:", "trace:<path>"}},
        {"trace:;;;", {"trace:;;;", "trace:<path>"}},
        {"trace:/a;/b;/c", {"trace:/a;/b;/c", "8"}},
        {"trace:/tmp/a b.usimm", {"a b.usimm", "trace:<path>"}},
        {"trace:/tmp/a#b.usimm", {"a#b.usimm", "trace:<path>"}},
    };
    for (const NegativeCase &c : cases) {
        SCOPED_TRACE(c.input);
        try {
            WorkloadSpec::parse(c.input, 8);
            FAIL() << "'" << c.input << "' was not rejected";
        } catch (const FatalError &err) {
            const std::string msg = err.what();
            for (const char *needle : c.needles)
                EXPECT_NE(msg.find(needle), std::string::npos)
                    << "message lacks '" << needle << "': " << msg;
        }
    }
}

TEST(SpecProperty, MalformedGeneratorSpellingsNameInputAndGrammar)
{
    // Generator fatals quote the whole offending spelling verbatim
    // and append the full three-family grammar, so a typo'd
    // --workloads item or manifest entry is self-explanatory.
    const char *kGrammar = "zipf:<rows>@s=<skew>";
    const NegativeCase cases[] = {
        {"zipf:0", {"zipf:0", "zipf:<rows>@s=<skew>",
                    "blend:<zipf-or-hotspot-spec>+attack@<rate>"}},
        {"zipf:0@s=1", {"zipf:0@s=1", "row count", "1..65536"}},
        {"zipf:999999@s=1", {"zipf:999999@s=1", "row count"}},
        {"zipf:4096@s=-1", {"zipf:4096@s=-1", "skew", kGrammar}},
        {"zipf:4096@s=8.001", {"zipf:4096@s=8.001", "skew"}},
        {"zipf:4096@s=0.9999", {"zipf:4096@s=0.9999", "skew"}},
        {"zipf:4096@skew=1", {"zipf:4096@skew=1", "s=<value>"}},
        {"hotspot:4096@hot=0@p=0.5",
         {"hotspot:4096@hot=0@p=0.5", "hot fraction"}},
        {"hotspot:4096@hot=1.5@p=0.5",
         {"hotspot:4096@hot=1.5@p=0.5", "hot fraction"}},
        {"hotspot:4096@hot=0.1@p=0",
         {"hotspot:4096@hot=0.1@p=0", "hot probability"}},
        {"hotspot:4096@hot=0.1@p=0.5@shift=0",
         {"hotspot:4096@hot=0.1@p=0.5@shift=0", "shift period"}},
        {"hotspot:4096@hot=0.1",
         {"hotspot:4096@hot=0.1", "@shift=<cycles>"}},
        {"blend:zipf:64@s=1",
         {"blend:zipf:64@s=1", "+attack@", kGrammar}},
        {"blend:zipf:64@s=1+attack@0",
         {"blend:zipf:64@s=1+attack@0", "attack rate"}},
        {"blend:zipf:64@s=1+attack@1",
         {"blend:zipf:64@s=1+attack@1", "attack rate"}},
        {"blend:blend:zipf:64@s=1+attack@0.1",
         {"blend:blend:zipf:64@s=1+attack@0.1", "not another blend"}},
    };
    for (const NegativeCase &c : cases) {
        SCOPED_TRACE(c.input);
        try {
            // Through the WorkloadSpec entry point, the route the
            // --workloads list and the manifest take.
            WorkloadSpec::parse(c.input, 8);
            FAIL() << "'" << c.input << "' was not rejected";
        } catch (const FatalError &err) {
            const std::string msg = err.what();
            for (const char *needle : c.needles)
                EXPECT_NE(msg.find(needle), std::string::npos)
                    << "message lacks '" << needle << "': " << msg;
        }
    }
}

TEST(SpecProperty, RandomAxesSurviveTheSweepGridAndIdentityPrefix)
{
    // End-to-end identity property: a random axes value placed in a
    // sweep cell appears verbatim inside identityPrefix() — the
    // bytes resume validation and the shard merge compare.
    Rng rng(0x1dff);
    for (int i = 0; i < 50; ++i) {
        SweepCell cell;
        cell.workload = WorkloadSpec::synthetic("gups");
        cell.axes = randomAxes(rng);
        const std::string prefix =
            SweepRunner::identityPrefix(7, cell, 0x1234);
        EXPECT_NE(prefix.find("," + cell.axes.field() + ","),
                  std::string::npos)
            << prefix;
    }
}

} // namespace
} // namespace srs
