/**
 * @file
 * Unit tests for the trace-driven core model: ROB limits, fetch and
 * retire widths, memory stalls and completion handling.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace srs
{
namespace
{

/** Scripted trace: fixed gap, fixed address pattern. */
struct ScriptedTrace : public TraceSource
{
    explicit ScriptedTrace(std::uint32_t gap, bool writes = false)
        : gap(gap), writes(writes)
    {}

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.nonMemGap = gap;
        rec.addr = 0x1000 + (counter++ % 64) * 64;
        rec.isWrite = writes;
        return rec;
    }

    std::uint32_t gap;
    bool writes;
    std::uint64_t counter = 0;
};

/** Configurable memory: fixed latency hits, or pending, or reject. */
struct FakeMemory : public CoreMemoryInterface
{
    Outcome
    access(Addr, bool, CoreId, std::uint64_t token, Cycle,
           Cycle &latencyOut) override
    {
        ++accesses;
        if (mode == Outcome::Hit) {
            latencyOut = hitLatency;
            return Outcome::Hit;
        }
        if (mode == Outcome::Pending) {
            pendingTokens.push_back(token);
            return Outcome::Pending;
        }
        return Outcome::Reject;
    }

    Outcome mode = Outcome::Hit;
    Cycle hitLatency = 10;
    std::uint64_t accesses = 0;
    std::vector<std::uint64_t> pendingTokens;
};

TEST(Core, RetiresAtFetchWidthWhenUnblocked)
{
    ScriptedTrace trace(100); // almost no memory ops
    FakeMemory mem;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 1000; ++c)
        core.tick(c);
    // Steady state: 4-wide core, ~1 instruction per cycle per lane.
    EXPECT_GT(core.ipc(1000), 3.0);
}

TEST(Core, MemoryLatencyThrottlesIpc)
{
    ScriptedTrace trace(0); // every instruction is a memory read
    FakeMemory mem;
    mem.hitLatency = 50;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 2000; ++c)
        core.tick(c);
    // 192-entry ROB / 50-cycle latency bounds throughput.
    EXPECT_LT(core.ipc(2000), 4.0);
    EXPECT_GT(core.retiredInstrs(), 0u);
}

TEST(Core, PendingReadsBlockRetirement)
{
    ScriptedTrace trace(0);
    FakeMemory mem;
    mem.mode = CoreMemoryInterface::Outcome::Pending;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 500; ++c)
        core.tick(c);
    // Nothing completes, so nothing retires; ROB fills to its limit.
    EXPECT_EQ(core.retiredInstrs(), 0u);
    EXPECT_EQ(mem.pendingTokens.size(), cfg.robSize);
}

TEST(Core, CompletionUnblocksRetirement)
{
    ScriptedTrace trace(0);
    FakeMemory mem;
    mem.mode = CoreMemoryInterface::Outcome::Pending;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 100; ++c)
        core.tick(c);
    ASSERT_FALSE(mem.pendingTokens.empty());
    for (std::uint64_t token : mem.pendingTokens)
        core.complete(token, 100);
    for (Cycle c = 100; c < 200; ++c)
        core.tick(c);
    EXPECT_GT(core.retiredInstrs(), 0u);
}

TEST(Core, RejectStallsFetchWithoutLoss)
{
    ScriptedTrace trace(0);
    FakeMemory mem;
    mem.mode = CoreMemoryInterface::Outcome::Reject;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 100; ++c)
        core.tick(c);
    EXPECT_EQ(core.memReads(), 0u);
    // Switch to hits: the stalled op issues, nothing was dropped.
    mem.mode = CoreMemoryInterface::Outcome::Hit;
    for (Cycle c = 100; c < 200; ++c)
        core.tick(c);
    EXPECT_GT(core.memReads(), 0u);
}

TEST(Core, WritesArePostedAndCounted)
{
    ScriptedTrace trace(3, /*writes=*/true);
    FakeMemory mem;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 500; ++c)
        core.tick(c);
    EXPECT_GT(core.memWrites(), 0u);
    EXPECT_EQ(core.memReads(), 0u);
}

TEST(Core, RobSizeBoundsInFlightWork)
{
    ScriptedTrace trace(0);
    FakeMemory mem;
    mem.mode = CoreMemoryInterface::Outcome::Pending;
    CoreConfig cfg;
    cfg.robSize = 16;
    Core core(0, cfg, trace, mem);
    for (Cycle c = 0; c < 100; ++c)
        core.tick(c);
    EXPECT_EQ(mem.pendingTokens.size(), 16u);
}

TEST(Core, IpcZeroBeforeRunning)
{
    ScriptedTrace trace(1);
    FakeMemory mem;
    Core core(0, CoreConfig{}, trace, mem);
    EXPECT_DOUBLE_EQ(core.ipc(0), 0.0);
}

TEST(Core, DegenerateConfigRejected)
{
    ScriptedTrace trace(1);
    FakeMemory mem;
    CoreConfig cfg;
    cfg.fetchWidth = 0;
    EXPECT_DEATH(Core(0, cfg, trace, mem), "degenerate");
}


TEST(Core, PureComputeRecordsSkipMemory)
{
    // addr == kInvalidAddr marks a pure-compute record (exhausted
    // finite traces emit these): no memory access is issued and the
    // core keeps retiring.
    struct IdleTrace : public TraceSource
    {
        TraceRecord
        next() override
        {
            TraceRecord rec;
            rec.nonMemGap = 3;
            rec.addr = kInvalidAddr;
            return rec;
        }
    };
    IdleTrace trace;
    FakeMemory mem;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle now = 0; now < 200; ++now)
        core.tick(now);
    EXPECT_GT(core.retiredInstrs(), 0u);
    EXPECT_EQ(core.memReads(), 0u);
    EXPECT_EQ(core.memWrites(), 0u);
    EXPECT_EQ(mem.accesses, 0u);
}

TEST(Core, MixedComputeAndMemoryRecords)
{
    // Alternate real accesses with pure-compute records; counters
    // only reflect the real ones.
    struct MixTrace : public TraceSource
    {
        TraceRecord
        next() override
        {
            TraceRecord rec;
            rec.nonMemGap = 1;
            rec.addr = (n++ % 2 == 0) ? 0x1000 : kInvalidAddr;
            return rec;
        }
        std::uint64_t n = 0;
    };
    MixTrace trace;
    FakeMemory mem;
    CoreConfig cfg;
    Core core(0, cfg, trace, mem);
    for (Cycle now = 0; now < 400; ++now)
        core.tick(now);
    EXPECT_GT(core.memReads(), 0u);
    EXPECT_EQ(core.memReads(), mem.accesses);
}

} // namespace
} // namespace srs
