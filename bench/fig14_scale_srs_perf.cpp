/**
 * @file
 * Figure 14 reproduction — the paper's headline performance result:
 * normalized performance of Scale-SRS (swap rate 3) and RRS (swap
 * rate 6) at T_RH = 1200, per workload and averaged.
 *
 * Paper shape: RRS loses ~4% on average with >10% outliers (gcc
 * worst at 26.5%); Scale-SRS loses ~0.7%.
 *
 * Every point — per-workload cells and the MIX points (per-core
 * profile draws routed through runWorkloadMix) — runs through
 * SweepRunner, two cells per workload, so wall-clock scales down
 * with core count (SRS_BENCH_THREADS overrides).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    constexpr std::uint32_t trh = 1200;

    // Two cells per point: RRS at rate 6, Scale-SRS at rate 3.  The
    // MIX points (per-core random benchmark combinations) follow the
    // single-workload points in the same cell list.
    constexpr std::uint32_t kMixes = 2;
    std::vector<SweepCell> cells;
    const auto workloads = benchWorkloads();
    const auto appendPair = [&](const SweepCell &proto) {
        SweepCell rrs = proto;
        rrs.mitigation = MitigationKind::Rrs;
        rrs.trh = trh;
        rrs.swapRate = 6;
        cells.push_back(rrs);
        SweepCell scale = std::move(rrs);
        scale.mitigation = MitigationKind::ScaleSrs;
        scale.swapRate = 3;
        cells.push_back(std::move(scale));
    };
    for (const WorkloadProfile &w : workloads) {
        SweepCell proto;
        proto.workload = WorkloadSpec::synthetic(w.name);
        appendPair(proto);
    }
    for (std::uint32_t mix = 0; mix < kMixes; ++mix)
        appendPair(mixSweepCell(mix, exp.numCores));
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    header("Figure 14: normalized performance at T_RH = 1200");
    std::printf("%-16s%12s%14s%14s\n", "workload", "RRS(r=6)",
                "ScaleSRS(r=3)", "swaps R/S");
    std::vector<double> rrsAll, scaleAll;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const SweepResult &rrs = results[2 * i];
        const SweepResult &scale = results[2 * i + 1];
        rrsAll.push_back(rrs.normalized);
        scaleAll.push_back(scale.normalized);
        char swapCol[32];
        std::snprintf(swapCol, sizeof(swapCol), "%llu/%llu",
                      static_cast<unsigned long long>(rrs.run.swaps),
                      static_cast<unsigned long long>(scale.run.swaps));
        std::printf("%-16s%12.4f%14.4f%14s\n",
                    workloads[i].name.c_str(), rrs.normalized,
                    scale.normalized, swapCol);
        std::fflush(stdout);
    }

    for (std::uint32_t mix = 0; mix < kMixes; ++mix) {
        const std::size_t at = 2 * (workloads.size() + mix);
        const SweepResult &rrs = results[at];
        const SweepResult &scale = results[at + 1];
        rrsAll.push_back(rrs.normalized);
        scaleAll.push_back(scale.normalized);
        std::printf("mix%-13u%12.4f%14.4f\n", mix, rrs.normalized,
                    scale.normalized);
    }

    std::printf("%-16s%12.4f%14.4f\n", "ALL (geomean)",
                geoMean(rrsAll), geoMean(scaleAll));
    std::printf("\naverage slowdown: RRS %.2f%%, Scale-SRS %.2f%%\n",
                (1.0 - geoMean(rrsAll)) * 100.0,
                (1.0 - geoMean(scaleAll)) * 100.0);
    return 0;
}
