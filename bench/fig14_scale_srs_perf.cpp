/**
 * @file
 * Figure 14 reproduction — the paper's headline performance result:
 * normalized performance of Scale-SRS (swap rate 3) and RRS (swap
 * rate 6) at T_RH = 1200, per workload and averaged.
 *
 * Paper shape: RRS loses ~4% on average with >10% outliers (gcc
 * worst at 26.5%); Scale-SRS loses ~0.7%.
 */

#include "bench_util.hh"
#include "common/logging.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    BaselineCache base(exp);
    constexpr std::uint32_t trh = 1200;

    header("Figure 14: normalized performance at T_RH = 1200");
    std::printf("%-16s%12s%12s%14s\n", "workload", "RRS(r=6)",
                "ScaleSRS(r=3)", "swaps R/S");
    std::vector<double> rrsAll, scaleAll;
    for (const WorkloadProfile &w : benchWorkloads()) {
        const double rrs =
            normalized(base, exp, MitigationKind::Rrs, trh, 6, w);
        const double scale =
            normalized(base, exp, MitigationKind::ScaleSrs, trh, 3, w);
        rrsAll.push_back(rrs);
        scaleAll.push_back(scale);
        std::printf("%-16s%12.4f%12.4f\n", w.name.c_str(), rrs, scale);
        std::fflush(stdout);
    }

    // MIX workloads (per-core random benchmark combinations).
    for (std::uint32_t mix = 0; mix < 2; ++mix) {
        const auto perCore = mixWorkload(mix, exp.numCores);
        const SystemConfig baseCfg =
            makeSystemConfig(exp, MitigationKind::None, trh, 6);
        const SystemConfig rrsCfg =
            makeSystemConfig(exp, MitigationKind::Rrs, trh, 6);
        const SystemConfig scaleCfg =
            makeSystemConfig(exp, MitigationKind::ScaleSrs, trh, 3);
        const double b =
            runWorkloadMix(baseCfg, perCore, exp).aggregateIpc;
        const double rrs =
            runWorkloadMix(rrsCfg, perCore, exp).aggregateIpc / b;
        const double scale =
            runWorkloadMix(scaleCfg, perCore, exp).aggregateIpc / b;
        rrsAll.push_back(rrs);
        scaleAll.push_back(scale);
        std::printf("mix%-13u%12.4f%12.4f\n", mix, rrs, scale);
        std::fflush(stdout);
    }

    std::printf("%-16s%12.4f%12.4f\n", "ALL (geomean)",
                geoMean(rrsAll), geoMean(scaleAll));
    std::printf("\naverage slowdown: RRS %.2f%%, Scale-SRS %.2f%%\n",
                (1.0 - geoMean(rrsAll)) * 100.0,
                (1.0 - geoMean(scaleAll)) * 100.0);
    return 0;
}
