/**
 * @file
 * Figure 14 reproduction — the paper's headline performance result:
 * normalized performance of Scale-SRS (swap rate 3) and RRS (swap
 * rate 6) at T_RH = 1200, per workload and averaged.
 *
 * Paper shape: RRS loses ~4% on average with >10% outliers (gcc
 * worst at 26.5%); Scale-SRS loses ~0.7%.
 *
 * The per-workload cells run through SweepRunner (two cells per
 * workload), so wall-clock scales down with core count; the MIX
 * points need runWorkloadMix and stay serial.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    constexpr std::uint32_t trh = 1200;

    // Two cells per workload: RRS at rate 6, Scale-SRS at rate 3.
    std::vector<SweepCell> cells;
    const auto workloads = benchWorkloads();
    for (const WorkloadProfile &w : workloads) {
        SweepCell rrs;
        rrs.workload = w.name;
        rrs.mitigation = MitigationKind::Rrs;
        rrs.trh = trh;
        rrs.swapRate = 6;
        cells.push_back(rrs);
        SweepCell scale = rrs;
        scale.mitigation = MitigationKind::ScaleSrs;
        scale.swapRate = 3;
        cells.push_back(scale);
    }
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    header("Figure 14: normalized performance at T_RH = 1200");
    std::printf("%-16s%12s%14s%14s\n", "workload", "RRS(r=6)",
                "ScaleSRS(r=3)", "swaps R/S");
    std::vector<double> rrsAll, scaleAll;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const SweepResult &rrs = results[2 * i];
        const SweepResult &scale = results[2 * i + 1];
        rrsAll.push_back(rrs.normalized);
        scaleAll.push_back(scale.normalized);
        char swapCol[32];
        std::snprintf(swapCol, sizeof(swapCol), "%llu/%llu",
                      static_cast<unsigned long long>(rrs.run.swaps),
                      static_cast<unsigned long long>(scale.run.swaps));
        std::printf("%-16s%12.4f%14.4f%14s\n",
                    workloads[i].name.c_str(), rrs.normalized,
                    scale.normalized, swapCol);
        std::fflush(stdout);
    }

    // MIX workloads (per-core random benchmark combinations).
    for (std::uint32_t mix = 0; mix < 2; ++mix) {
        const auto perCore = mixWorkload(mix, exp.numCores);
        const SystemConfig baseCfg =
            makeSystemConfig(exp, MitigationKind::None, trh, 6);
        const SystemConfig rrsCfg =
            makeSystemConfig(exp, MitigationKind::Rrs, trh, 6);
        const SystemConfig scaleCfg =
            makeSystemConfig(exp, MitigationKind::ScaleSrs, trh, 3);
        const double b =
            runWorkloadMix(baseCfg, perCore, exp).aggregateIpc;
        const double rrs =
            runWorkloadMix(rrsCfg, perCore, exp).aggregateIpc / b;
        const double scale =
            runWorkloadMix(scaleCfg, perCore, exp).aggregateIpc / b;
        rrsAll.push_back(rrs);
        scaleAll.push_back(scale);
        std::printf("mix%-13u%12.4f%14.4f\n", mix, rrs, scale);
        std::fflush(stdout);
    }

    std::printf("%-16s%12.4f%14.4f\n", "ALL (geomean)",
                geoMean(rrsAll), geoMean(scaleAll));
    std::printf("\naverage slowdown: RRS %.2f%%, Scale-SRS %.2f%%\n",
                (1.0 - geoMean(rrsAll)) * 100.0,
                (1.0 - geoMean(scaleAll)) * 100.0);
    return 0;
}
