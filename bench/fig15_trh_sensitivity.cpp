/**
 * @file
 * Figure 15 reproduction: normalized performance of Scale-SRS and
 * RRS as T_RH scales from 4800 down to 512 (Misra-Gries tracker).
 *
 * Paper shape: RRS degrades steeply at low T_RH (14% at 512) while
 * Scale-SRS stays shallow (4% at 512) thanks to its lower swap rate.
 */

#include "bench_util.hh"
#include "common/logging.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    BaselineCache base(exp);
    const auto workloads = benchWorkloads();

    header("Figure 15: T_RH sensitivity (Misra-Gries tracker)");
    std::printf("%-14s%12s%12s%12s%12s\n", "config", "T_RH=512",
                "T_RH=1200", "T_RH=2400", "T_RH=4800");
    struct Point { MitigationKind kind; std::uint32_t rate; };
    for (const Point pt : {Point{MitigationKind::Rrs, 6},
                           Point{MitigationKind::ScaleSrs, 3}}) {
        std::printf("%-14s", mitigationKindName(pt.kind));
        for (const std::uint32_t trh : {512u, 1200u, 2400u, 4800u}) {
            std::vector<double> norms;
            for (const WorkloadProfile &w : workloads)
                norms.push_back(
                    normalized(base, exp, pt.kind, trh, pt.rate, w));
            std::printf("%12.4f", geoMean(norms));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
