/**
 * @file
 * Figure 15 reproduction: normalized performance of Scale-SRS and
 * RRS as T_RH scales from 4800 down to 512 (Misra-Gries tracker).
 *
 * Paper shape: RRS degrades steeply at low T_RH (14% at 512) while
 * Scale-SRS stays shallow (4% at 512) thanks to its lower swap rate.
 *
 * The 2 x 4 x workloads grid runs through SweepRunner
 * (SRS_BENCH_THREADS overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    const auto workloads = benchWorkloads();
    struct Point { MitigationKind kind; std::uint32_t rate; };
    const Point points[] = {{MitigationKind::Rrs, 6},
                            {MitigationKind::ScaleSrs, 3}};
    const std::uint32_t trhs[] = {512, 1200, 2400, 4800};

    // The two design points use different swap rates, so build the
    // cell list explicitly: workload outer, point, then T_RH.
    std::vector<SweepCell> cells;
    for (const WorkloadProfile &w : workloads) {
        for (const Point pt : points) {
            for (const std::uint32_t trh : trhs) {
                SweepCell cell;
                cell.workload = WorkloadSpec::synthetic(w.name);
                cell.mitigation = pt.kind;
                cell.trh = trh;
                cell.swapRate = pt.rate;
                cells.push_back(std::move(cell));
            }
        }
    }
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    header("Figure 15: T_RH sensitivity (Misra-Gries tracker)");
    std::printf("%-14s%12s%12s%12s%12s\n", "config", "T_RH=512",
                "T_RH=1200", "T_RH=2400", "T_RH=4800");
    const std::size_t nPt = std::size(points);
    const std::size_t nTrh = std::size(trhs);
    for (std::size_t pi = 0; pi < nPt; ++pi) {
        std::printf("%-14s", mitigationKindName(points[pi].kind));
        for (std::size_t ti = 0; ti < nTrh; ++ti) {
            std::vector<double> norms;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi)
                norms.push_back(
                    results[(wi * nPt + pi) * nTrh + ti].normalized);
            std::printf("%12.4f", geoMean(norms));
        }
        std::printf("\n");
    }
    return 0;
}
