/**
 * @file
 * Figure 7 reproduction: the number of correct random guesses (k) an
 * attacker needs as the biasing rounds N increase, for T_RH in
 * {4800, 2400, 1200}.
 *
 * Paper anchors at T_RH 4800: k = 4 up to N ~ 500, k = 2 from
 * N ~ 1100; at lower T_RH the curve reaches k = 0 (latent
 * activations alone suffice).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 7: required correct guesses k vs attack rounds");
    std::printf("%-8s%12s%12s%12s\n", "N", "T_RH=4800", "T_RH=2400",
                "T_RH=1200");
    for (std::uint64_t n = 0; n <= 1400; n += 100) {
        std::printf("%-8llu", static_cast<unsigned long long>(n));
        for (const std::uint32_t trh : {4800u, 2400u, 1200u}) {
            AttackParams p;
            p.trh = trh;
            std::printf("%12llu",
                        static_cast<unsigned long long>(
                            JuggernautModel(p).requiredGuesses(n)));
        }
        std::printf("\n");
    }
    return 0;
}
