/**
 * @file
 * Figure 7 reproduction: the number of correct random guesses (k) an
 * attacker needs as the biasing rounds N increase, for T_RH in
 * {4800, 2400, 1200}.  The curve is one SecuritySweep grid over
 * (trh, rounds) with AttackParams derived from the (default ddr4)
 * system axes — the same cells the security CSV would carry.
 *
 * Paper anchors at T_RH 4800: k = 4 up to N ~ 500, k = 2 from
 * N ~ 1100; at lower T_RH the curve reaches k = 0 (latent
 * activations alone suffice).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/security_sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 7: required correct guesses k vs attack rounds");
    SecurityGrid grid;
    grid.defenses = {SecurityDefense::Rrs};
    grid.trhs = {4800, 2400, 1200};
    grid.swapRates = {6};
    grid.rounds.clear();
    for (std::uint64_t n = 0; n <= 1400; n += 100)
        grid.rounds.push_back(n);
    SecuritySweep sweep(/*baseSeed=*/0x5EED, benchThreads());
    const std::vector<SecurityResult> results = sweep.run(grid);

    std::printf("%-8s%12s%12s%12s\n", "N", "T_RH=4800", "T_RH=2400",
                "T_RH=1200");
    // Expansion order: trhs outer, the rounds axis innermost.
    const std::size_t nRounds = grid.rounds.size();
    for (std::size_t ni = 0; ni < nRounds; ++ni) {
        std::printf("%-8llu", static_cast<unsigned long long>(
                                  grid.rounds[ni]));
        for (std::size_t ti = 0; ti < grid.trhs.size(); ++ti) {
            const SecurityResult &r = results[ti * nRounds + ni];
            std::printf("%12llu", static_cast<unsigned long long>(
                                      r.analytic.k));
        }
        std::printf("\n");
    }
    return 0;
}
