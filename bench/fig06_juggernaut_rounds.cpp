/**
 * @file
 * Figure 6 reproduction: time-to-break RRS with Juggernaut as the
 * number of biasing rounds N varies, for T_RH in {4800, 2400, 1200}.
 * Both the analytical model (Eq. 1-10) and event-driven Monte-Carlo
 * simulation are reported, mirroring the paper's validation.
 *
 * Paper anchors: cliffs where k drops; minimum < 4 hours at T_RH
 * 4800 (N ~ 1100); one-epoch breaks at T_RH <= 2400.
 *
 * The whole figure is one SecuritySweep grid over (trh, rounds)
 * with Monte-Carlo campaigns enabled: each cell runs a stratified
 * campaign under its own deterministic cell seed, pool-parallel
 * across cells (SRS_BENCH_THREADS overrides the worker count;
 * results are identical at any thread count).  Each Monte-Carlo
 * estimate is printed with its 95% confidence interval — the same
 * numbers the security CSV columns carry.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/security_sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 6: time-to-break RRS (days) vs attack rounds");
    SecurityGrid grid;
    grid.defenses = {SecurityDefense::Rrs};
    grid.trhs = {4800, 2400, 1200};
    grid.swapRates = {6};
    grid.rounds.clear();
    for (std::uint64_t n = 0; n <= 1400; n += 100)
        grid.rounds.push_back(n);
    grid.rounds.push_back(SecurityGrid::kBestRounds);
    SecuritySweep sweep(/*baseSeed=*/0x5EED, benchThreads());
    sweep.setIterations(20000);
    const std::vector<SecurityResult> results = sweep.run(grid);

    std::printf("%-8s%16s%16s%26s%6s\n", "N", "analytic",
                "montecarlo", "95% CI", "k");
    // Expansion order: trhs outer, the rounds axis innermost (the
    // kBestRounds sentinel is the last rounds entry per trh).
    const std::size_t nRounds = grid.rounds.size();
    for (std::size_t ti = 0; ti < grid.trhs.size(); ++ti) {
        std::printf("-- T_RH = %u --\n", grid.trhs[ti]);
        for (std::size_t ni = 0; ni + 1 < nRounds; ++ni) {
            const SecurityResult &r = results[ti * nRounds + ni];
            const unsigned long long n =
                static_cast<unsigned long long>(grid.rounds[ni]);
            if (!r.analytic.feasible && r.analytic.k > 0) {
                std::printf("%-8llu%16s\n", n, "infeasible");
                continue;
            }
            char ci[40];
            std::snprintf(ci, sizeof(ci), "[%.4g, %.4g]",
                          toDays(r.mc.timeCiLoSec),
                          toDays(r.mc.timeCiHiSec));
            std::printf("%-8llu%16.6g%16.6g%26s%6llu\n", n,
                        toDays(r.analytic.timeToBreakSec),
                        toDays(r.mc.meanTimeSec), ci,
                        static_cast<unsigned long long>(
                            r.analytic.k));
        }
        const AttackResult &best =
            results[ti * nRounds + nRounds - 1].analytic;
        std::printf("best: N=%llu -> %.4g days (%.2f hours)\n",
                    static_cast<unsigned long long>(best.rounds),
                    toDays(best.timeToBreakSec),
                    best.timeToBreakSec / 3600.0);
    }
    return 0;
}
