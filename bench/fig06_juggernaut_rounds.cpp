/**
 * @file
 * Figure 6 reproduction: time-to-break RRS with Juggernaut as the
 * number of biasing rounds N varies, for T_RH in {4800, 2400, 1200}.
 * Both the analytical model (Eq. 1-10) and event-driven Monte-Carlo
 * simulation are reported, mirroring the paper's validation.
 *
 * Paper anchors: cliffs where k drops; minimum < 4 hours at T_RH
 * 4800 (N ~ 1100); one-epoch breaks at T_RH <= 2400.
 *
 * The Monte-Carlo campaigns are sharded across the thread pool via
 * MonteCarloBatch (SRS_BENCH_THREADS overrides the worker count);
 * results are shard-deterministic, so any thread count reproduces
 * the same numbers.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"
#include "security/monte_carlo.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 6: time-to-break RRS (days) vs attack rounds");
    std::printf("%-8s%16s%16s%16s%6s\n", "N", "analytic", "montecarlo",
                "", "k");
    for (const std::uint32_t trh : {4800u, 2400u, 1200u}) {
        AttackParams p;
        p.trh = trh;
        JuggernautModel model(p);
        MonteCarloBatch mc(p, 0x5EED + trh, benchThreads());
        std::printf("-- T_RH = %u --\n", trh);
        for (std::uint64_t n = 0; n <= 1400; n += 100) {
            const AttackResult a = model.evaluateRrs(n);
            if (!a.feasible && a.k > 0) {
                std::printf("%-8llu%16s\n",
                            static_cast<unsigned long long>(n),
                            "infeasible");
                continue;
            }
            const MonteCarloResult m = mc.runRrs(n, 20000);
            std::printf("%-8llu%16.6g%16.6g%16s%6llu\n",
                        static_cast<unsigned long long>(n),
                        toDays(a.timeToBreakSec),
                        toDays(m.meanTimeSec), "",
                        static_cast<unsigned long long>(a.k));
        }
        const AttackResult best = model.bestRrs();
        std::printf("best: N=%llu -> %.4g days (%.2f hours)\n",
                    static_cast<unsigned long long>(best.rounds),
                    toDays(best.timeToBreakSec),
                    best.timeToBreakSec / 3600.0);
    }
    return 0;
}
