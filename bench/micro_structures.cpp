/**
 * @file
 * google-benchmark microbenchmarks for the hardware-modelled
 * structures: the memory controller's critical-path operations must
 * be cheap to simulate (and correspond to simple hardware).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/address.hh"
#include "rowswap/cat.hh"
#include "rowswap/compact_rit.hh"
#include "rowswap/indirection.hh"
#include "tracker/counting_bloom.hh"
#include "tracker/space_saving.hh"

namespace
{

void
BM_AddressDecode(benchmark::State &state)
{
    srs::DramOrg org;
    srs::AddressMap map(org);
    srs::Rng rng(1);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr += 0x9E3779B9;
        benchmark::DoNotOptimize(
            map.decode(addr & (org.capacityBytes() - 1)));
    }
}
BENCHMARK(BM_AddressDecode);

void
BM_CatLookup(benchmark::State &state)
{
    srs::CatSizing sizing;
    sizing.targetEntries = 4096;
    srs::Cat cat(sizing, 7);
    srs::Rng rng(2);
    for (srs::RowId k = 0; k < 4096; ++k)
        cat.insert(k, k + 1);
    srs::RowId key = 0;
    for (auto _ : state) {
        key = (key + 1) & 8191;
        benchmark::DoNotOptimize(cat.lookup(key));
    }
}
BENCHMARK(BM_CatLookup);

void
BM_CatInsertErase(benchmark::State &state)
{
    srs::CatSizing sizing;
    sizing.targetEntries = 4096;
    srs::Cat cat(sizing, 7);
    srs::RowId key = 0;
    for (auto _ : state) {
        ++key;
        cat.insert(key, key);
        cat.erase(key);
    }
}
BENCHMARK(BM_CatInsertErase);

void
BM_SpaceSavingIncrement(benchmark::State &state)
{
    srs::SpaceSaving table(
        static_cast<std::uint32_t>(state.range(0)));
    srs::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.increment(
            static_cast<srs::RowId>(rng.nextBelow(100000))));
    }
}
BENCHMARK(BM_SpaceSavingIncrement)->Arg(1024)->Arg(8192);

void
BM_IndirectionRemap(benchmark::State &state)
{
    srs::RowIndirection rit(131072);
    srs::Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const auto p = static_cast<srs::RowId>(rng.nextBelow(131072));
        auto q = static_cast<srs::RowId>(rng.nextBelow(131072));
        if (p == q)
            q = (q + 1) % 131072;
        rit.swapPhysical(p, q, 0);
    }
    srs::RowId row = 0;
    for (auto _ : state) {
        row = (row + 1) & 131071;
        benchmark::DoNotOptimize(rit.remap(row));
    }
}
BENCHMARK(BM_IndirectionRemap);

void
BM_IndirectionSwap(benchmark::State &state)
{
    srs::RowIndirection rit(131072);
    srs::Rng rng(5);
    for (auto _ : state) {
        const auto p = static_cast<srs::RowId>(rng.nextBelow(131072));
        auto q = static_cast<srs::RowId>(rng.nextBelow(131072));
        if (p == q)
            q = (q + 1) % 131072;
        rit.swapPhysical(p, q, 0);
    }
}
BENCHMARK(BM_IndirectionSwap);

void
BM_LlcAccess(benchmark::State &state)
{
    srs::SetAssocCache cache(srs::CacheConfig{});
    srs::Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBelow(1ULL << 28) * 64, false));
    }
}
BENCHMARK(BM_LlcAccess);

} // namespace


void
BM_CompactRitRemap(benchmark::State &state)
{
    // Forward remap is the per-access critical path of the
    // Section VIII-4 single-table RIT: must stay one probe.
    srs::CatSizing sizing;
    sizing.targetEntries = 8192;
    srs::CompactRit rit(65536, sizing, 5);
    srs::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const srs::RowId p =
            static_cast<srs::RowId>(rng.nextBelow(65536));
        srs::RowId q = static_cast<srs::RowId>(rng.nextBelow(65536));
        if (p == q)
            q = (q + 1) % 65536;
        rit.swapPhysical(p, q);
    }
    srs::RowId row = 0;
    for (auto _ : state) {
        row = (row + 257) & 65535;
        benchmark::DoNotOptimize(rit.remap(row));
    }
}
BENCHMARK(BM_CompactRitRemap);

void
BM_CompactRitReverseWalk(benchmark::State &state)
{
    // Reverse lookups pay one probe per cycle hop; Arg = length of
    // the swap chain threaded through one row (SRS-style growth).
    srs::CatSizing sizing;
    sizing.targetEntries = 8192;
    srs::CompactRit rit(65536, sizing, 5);
    srs::RowId slot = 0;
    for (srs::RowId next = 1;
         next <= static_cast<srs::RowId>(state.range(0)); ++next) {
        rit.swapPhysical(slot, next);
        slot = next;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(rit.logicalAt(slot));
}
BENCHMARK(BM_CompactRitReverseWalk)->Arg(2)->Arg(16)->Arg(64);

void
BM_CountingBloomInsert(benchmark::State &state)
{
    srs::CountingBloomConfig cfg;
    cfg.counters = static_cast<std::uint32_t>(state.range(0));
    srs::CountingBloom cbf(cfg, 9);
    srs::RowId row = 0;
    for (auto _ : state) {
        row = (row + 101) & 131071;
        benchmark::DoNotOptimize(cbf.insert(row));
    }
}
BENCHMARK(BM_CountingBloomInsert)->Arg(1024)->Arg(8192);

void
BM_CountingBloomEstimate(benchmark::State &state)
{
    srs::CountingBloomConfig cfg;
    srs::CountingBloom cbf(cfg, 9);
    srs::Rng rng(4);
    for (int i = 0; i < 50000; ++i)
        cbf.insert(static_cast<srs::RowId>(rng.nextBelow(131072)));
    srs::RowId row = 0;
    for (auto _ : state) {
        row = (row + 101) & 131071;
        benchmark::DoNotOptimize(cbf.estimate(row));
    }
}
BENCHMARK(BM_CountingBloomEstimate);

BENCHMARK_MAIN();
