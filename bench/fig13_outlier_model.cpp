/**
 * @file
 * Figure 13 reproduction: time-to-appear (days) for M simultaneous
 * outlier rows under a maximal attack, as the swap rate varies, at
 * T_RH 4800.
 *
 * Paper anchors: at swap rate 3, three outliers coincide roughly
 * once a month and four take ~decades — which is what makes LLC
 * pinning a viable rare-case backstop.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/outlier_model.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 13: outlier time-to-appear (days), T_RH = 4800");
    std::printf("%-12s%14s%14s%14s%14s\n", "swap-rate", "M=1", "M=2",
                "M=3", "M=4");
    for (std::uint32_t rate = 2; rate <= 6; ++rate) {
        OutlierParams p;
        p.swapRate = rate;
        OutlierModel m(p);
        std::printf("%-12u", rate);
        for (std::uint64_t mRows = 1; mRows <= 4; ++mRows)
            std::printf("%14.4g", toDays(m.timeToAppearSec(mRows)));
        std::printf("\n");
    }

    OutlierParams p3;
    p3.swapRate = 3;
    OutlierModel m3(p3);
    std::printf("\nrate-3 detail: swaps/epoch G = %.0f, "
                "E[rows chosen 3x] = %.3g\n",
                m3.swapsPerEpoch(), m3.expectedRowsWith(3));
    std::printf("3 outliers every %.1f days; 4 outliers every %.1f "
                "years\n",
                toDays(m3.timeToAppearSec(3)),
                toDays(m3.timeToAppearSec(4)) / 365.0);

    // Monte-Carlo cross-check of the footnote-4 Poisson statistics
    // in a downscaled rare-event regime (the full-scale events are
    // too rare to sample directly).
    OutlierParams pv;
    pv.trh = 4800;
    pv.swapRate = 3;
    pv.rowsPerBank = 4096;
    pv.actMaxPerEpoch = 3200ULL * 1600;
    OutlierModel mv(pv);
    std::printf("\nfootnote-4 validation (4K rows, G=3200, k=7): "
                "analytic p=%.4g, simulated p=%.4g (8000 epochs)\n",
                mv.pSimultaneous(1, 7),
                mv.simulateSimultaneous(1, 7, 8000, 0xFEED));
    return 0;
}
