/**
 * @file
 * Section IX-A comparison: Scale-SRS against the other
 * aggressor-focused defenses, BlockHammer (throttling) and AQUA
 * (quarantine).
 *
 * Three views:
 *  1. BlockHammer's DoS exposure: the enforced per-activation delay
 *     for a blacklisted row as T_RH drops (paper anchor: ~20 us at
 *     T_RH 4800), versus Scale-SRS which delays nothing.
 *  2. Normalized performance on benign workloads at T_RH = 1200
 *     (the grid runs through SweepRunner; SRS_BENCH_THREADS
 *     overrides the worker count).
 *  3. Per-bank SRAM and DRAM capacity costs.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "mitigation/aqua.hh"
#include "mitigation/blockhammer.hh"
#include "sim/sweep.hh"
#include "tracker/misra_gries.hh"

namespace
{

using namespace srs;

/** Throttle spacing (us) of a freshly configured BlockHammer. */
double
bhSpacingUs(std::uint32_t trh)
{
    const DramOrg org;
    const DramTiming timing = DramTiming::fromNs(DramTimingNs{});
    MemoryController ctrl(org, timing);
    MisraGriesConfig tcfg;
    tcfg.ts = trh / 6;
    tcfg.actMaxPerEpoch = 1360000;
    MisraGriesTracker tracker(tcfg);
    MitigationConfig mcfg;
    mcfg.trh = trh;
    mcfg.swapRate = 6;
    BlockHammerConfig bhCfg;
    bhCfg.safetyFactor = 0.66; // calibrated to the paper's ~20 us
    BlockHammer bh(ctrl, tracker, mcfg, bhCfg);
    return static_cast<double>(bh.throttleSpacing()) / 3200.0;
}

} // namespace

int
main()
{
    using namespace srs::bench;
    setQuietLogging(true);

    header("BlockHammer DoS exposure: delay per blacklisted ACT");
    std::printf("%-8s %14s %18s\n", "T_RH", "delay (us)",
                "64ms budget eaten");
    for (const std::uint32_t trh : {4800u, 2400u, 1200u, 512u}) {
        const double us = bhSpacingUs(trh);
        std::printf("%-8u %14.1f %17.0f%%\n", trh, us,
                    100.0 * us * 1e-6 * trh / 64e-3);
    }
    std::printf("(anchor: ~20 us at T_RH 4800; Scale-SRS never "
                "delays demand ACTs)\n");

    header("benign performance at T_RH = 1200 (norm. to baseline)");
    ExperimentConfig exp = benchExperiment();
    const auto workloads = benchWorkloads();
    struct Point
    {
        const char *label;
        MitigationKind kind;
        std::uint32_t rate;
    };
    const Point points[] = {
        {"scale-srs", MitigationKind::ScaleSrs, 3},
        {"blockhammer", MitigationKind::BlockHammer, 6},
        {"aqua", MitigationKind::Aqua, 6},
        {"rrs", MitigationKind::Rrs, 6},
    };
    // Per-point swap rates differ, so build the cells explicitly
    // (workload outer, defense inner) and fan out via SweepRunner.
    std::vector<SweepCell> cells;
    for (const WorkloadProfile &w : workloads) {
        for (const Point &pt : points) {
            SweepCell cell;
            cell.workload = WorkloadSpec::synthetic(w.name);
            cell.mitigation = pt.kind;
            cell.trh = 1200;
            cell.swapRate = pt.rate;
            cells.push_back(std::move(cell));
        }
    }
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    std::printf("%-13s", "workload");
    for (const Point &pt : points)
        std::printf(" %12s", pt.label);
    std::printf("\n");
    std::vector<std::vector<double>> cols(std::size(points));
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        std::printf("%-13s", workloads[wi].name.c_str());
        for (std::size_t i = 0; i < std::size(points); ++i) {
            const double n =
                results[wi * std::size(points) + i].normalized;
            cols[i].push_back(n);
            std::printf(" %12.4f", n);
        }
        std::printf("\n");
    }
    std::printf("%-13s", "geomean");
    for (const auto &col : cols)
        std::printf(" %12.4f", geoMean(col));
    std::printf("\n");

    header("per-bank cost summary (T_RH = 1200)");
    const DramOrg org;
    const DramTiming timing = DramTiming::fromNs(DramTimingNs{});
    MemoryController ctrl(org, timing);
    MisraGriesConfig tcfg;
    tcfg.ts = 400;
    tcfg.actMaxPerEpoch = 1360000;
    MisraGriesTracker tracker(tcfg);
    MitigationConfig mcfg;
    mcfg.trh = 1200;
    mcfg.swapRate = 6;
    BlockHammer bh(ctrl, tracker, mcfg);
    Aqua aqua(ctrl, tracker, mcfg);
    std::printf("%-13s %12s %22s\n", "defense", "SRAM/bank",
                "DRAM capacity cost");
    std::printf("%-13s %10.1fKB %22s\n", "blockhammer",
                static_cast<double>(bh.storageBitsPerBank()) / 8192.0,
                "none (throttles)");
    std::printf("%-13s %10.1fKB %20.1f%%\n", "aqua",
                static_cast<double>(aqua.storageBitsPerBank()) /
                    8192.0,
                100.0 * aqua.quarantineRows() / org.rowsPerBank);
    std::printf("%-13s %12s %22s\n", "scale-srs",
                "see table4", "0.05% (swap counters)");
    std::printf("\ntrade-offs: BlockHammer risks DoS on hot benign "
                "rows; AQUA carves\ncapacity for its quarantine; "
                "Scale-SRS pays a small RIT plus rare\nLLC pinning "
                "(Table IV has the full storage breakdown).\n");
    return 0;
}
