/**
 * @file
 * Figure 4 reproduction: RRS with vs without immediate unswap
 * operations, normalized to the unprotected baseline.
 *
 * Paper shape: skipping immediate unswaps defers all restores to the
 * epoch boundary, whose burst costs an extra ~3-7% on average at any
 * T_RH.
 *
 * The 2 x 3 x workloads grid runs through SweepRunner
 * (SRS_BENCH_THREADS overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();

    SweepGrid grid;
    grid.workloads = benchWorkloadSpecs();
    grid.mitigations = {MitigationKind::Rrs,
                        MitigationKind::RrsNoUnswap};
    grid.trhs = {1200, 2400, 4800};
    grid.swapRates = {6};
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(grid);

    header("Figure 4: RRS immediate-unswap ablation");
    std::printf("%-16s%14s%14s%12s\n", "config", "norm-perf",
                "vs-unswap", "");
    // Expansion order: workloads, then {rrs, rrs-no-unswap}, then
    // the three T_RHs.
    const std::size_t nMit = grid.mitigations.size();
    const std::size_t nTrh = grid.trhs.size();
    for (std::size_t ti = 0; ti < nTrh; ++ti) {
        std::vector<double> with, without;
        for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi) {
            with.push_back(results[(wi * nMit) * nTrh + ti].normalized);
            without.push_back(
                results[(wi * nMit + 1) * nTrh + ti].normalized);
        }
        const double gWith = geoMean(with);
        const double gWithout = geoMean(without);
        const std::uint32_t trh = grid.trhs[ti];
        std::printf("Unswap    T_RH=%-6u%8.4f\n", trh, gWith);
        std::printf("No-Unswap T_RH=%-6u%8.4f  (extra slowdown "
                    "%+.2f%%)\n",
                    trh, gWithout, (gWith - gWithout) * 100.0);
    }
    return 0;
}
