/**
 * @file
 * Figure 4 reproduction: RRS with vs without immediate unswap
 * operations, normalized to the unprotected baseline.
 *
 * Paper shape: skipping immediate unswaps defers all restores to the
 * epoch boundary, whose burst costs an extra ~3-7% on average at any
 * T_RH.
 */

#include "bench_util.hh"
#include "common/logging.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    BaselineCache base(exp);
    const auto workloads = benchWorkloads();

    header("Figure 4: RRS immediate-unswap ablation");
    std::printf("%-16s%14s%14s%12s\n", "config", "norm-perf",
                "vs-unswap", "");
    for (const std::uint32_t trh : {1200u, 2400u, 4800u}) {
        std::vector<double> with, without;
        for (const WorkloadProfile &w : workloads) {
            with.push_back(normalized(base, exp, MitigationKind::Rrs,
                                      trh, 6, w));
            without.push_back(normalized(
                base, exp, MitigationKind::RrsNoUnswap, trh, 6, w));
        }
        const double gWith = geoMean(with);
        const double gWithout = geoMean(without);
        std::printf("Unswap    T_RH=%-6u%8.4f\n", trh, gWith);
        std::printf("No-Unswap T_RH=%-6u%8.4f  (extra slowdown "
                    "%+.2f%%)\n",
                    trh, gWithout, (gWith - gWithout) * 100.0);
        std::fflush(stdout);
    }
    return 0;
}
