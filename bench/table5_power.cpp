/**
 * @file
 * Table V reproduction: extra power per channel at T_RH = 4800.
 *
 * Paper anchors: RRS 0.5% DRAM overhead / 903 mW SRAM; Scale-SRS
 * 0.2% / 703 mW (23% lower on-chip power).
 */

#include <cstdio>

#include "security/power_model.hh"
#include "security/storage_model.hh"

int
main()
{
    using namespace srs;

    StorageParams sp;
    sp.trh = 4800;
    StorageModel storage(sp);
    PowerModel power;

    const double rrsKb = storage.totalRrsBytes() / 1024.0;
    const double scaleKb = storage.totalScaleSrsBytes() / 1024.0;

    std::printf("==== Table V: extra power per channel (T_RH=4800) "
                "====\n");
    std::printf("%-36s%10s%12s\n", "Type of Power Overhead", "RRS",
                "Scale-SRS");
    std::printf("%-36s%9.2f%%%11.2f%%\n",
                "DRAM Power Overhead (Row-Swap)",
                power.dramOverheadPct(6, 2.0),
                power.dramOverheadPct(3, 1.0));
    std::printf("%-36s%8.0fmW%10.0fmW\n", "SRAM Power Overhead",
                power.sramPowerMw(rrsKb), power.sramPowerMw(scaleKb));
    std::printf("\n(on-chip structure sizes: RRS %.1fKB, Scale-SRS "
                "%.1fKB -> %.0f%% lower SRAM power)\n",
                rrsKb, scaleKb,
                (1.0 - power.sramPowerMw(scaleKb) /
                           power.sramPowerMw(rrsKb)) *
                    100.0);
    return 0;
}
