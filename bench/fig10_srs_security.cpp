/**
 * @file
 * Figure 10 reproduction: time-to-break SRS vs RRS under the
 * Juggernaut attack pattern across swap rates 6-10 and T_RH in
 * {4800, 2400, 1200}.  RRS is evaluated at the attacker-optimal N.
 *
 * Paper anchors: SRS > 2 years at T_RH 4800 / rate 6 and improving
 * with rate; RRS broken in hours-to-a-day regardless of rate.
 * Also reports the Section VIII-5 DDR5 variant (2x refresh).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 10: time-to-break (days), Juggernaut attack");
    std::printf("%-18s%12s%12s%12s%12s%12s\n", "config", "rate=6",
                "rate=7", "rate=8", "rate=9", "rate=10");
    for (const std::uint32_t trh : {4800u, 2400u, 1200u}) {
        std::printf("SRS  T_RH=%-8u", trh);
        for (std::uint32_t rate = 6; rate <= 10; ++rate) {
            AttackParams p;
            p.trh = trh;
            p.swapRate = rate;
            const AttackResult r = JuggernautModel(p).evaluateSrs();
            std::printf("%12.4g", toDays(r.timeToBreakSec));
        }
        std::printf("\n");
        std::printf("RRS  T_RH=%-8u", trh);
        for (std::uint32_t rate = 6; rate <= 10; ++rate) {
            AttackParams p;
            p.trh = trh;
            p.swapRate = rate;
            const AttackResult r = JuggernautModel(p).bestRrs();
            std::printf("%12.4g", toDays(r.timeToBreakSec));
        }
        std::printf("\n");
    }

    header("Section VIII-5: DDR5 (2x refresh) sanity check");
    for (std::uint32_t rate = 6; rate <= 10; ++rate) {
        AttackParams p;
        p.trh = 3100;
        p.swapRate = rate;
        p.epochSec = 32e-3;
        p.refreshOpsPerEpoch = 4096;
        const AttackResult r = JuggernautModel(p).bestRrs();
        std::printf("RRS under DDR5, T_RH=3100, rate=%u: %.4g days\n",
                    rate, toDays(r.timeToBreakSec));
    }
    return 0;
}
