/**
 * @file
 * Figure 10 reproduction: time-to-break SRS vs RRS under the
 * Juggernaut attack pattern across swap rates 6-10 and T_RH in
 * {4800, 2400, 1200}.  RRS is evaluated at the attacker-optimal N.
 *
 * The table is one SecuritySweep grid over (axes, defense, trh,
 * rate) — the same sweep engine and the same axes-derived
 * AttackParams the security CSV rows use (SRS_BENCH_THREADS
 * overrides the worker count; results are thread-invariant).
 *
 * Paper anchors: SRS > 2 years at T_RH 4800 / rate 6 and improving
 * with rate; RRS broken in hours-to-a-day regardless of rate.
 * Also reports the Section VIII-5 DDR5 variant, which is just the
 * ddr5 preset on the axes axis — no hand-rolled epoch constants.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/security_sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 10: time-to-break (days), Juggernaut attack");
    SecurityGrid grid;
    grid.defenses = {SecurityDefense::Srs, SecurityDefense::Rrs};
    grid.trhs = {4800, 2400, 1200};
    grid.swapRates = {6, 7, 8, 9, 10};
    grid.rounds = {SecurityGrid::kBestRounds};
    SecuritySweep sweep(/*baseSeed=*/0x5EED, benchThreads());
    const std::vector<SecurityResult> results = sweep.run(grid);

    std::printf("%-18s%12s%12s%12s%12s%12s\n", "config", "rate=6",
                "rate=7", "rate=8", "rate=9", "rate=10");
    // Expansion order: one axes point, defenses, trhs, rates
    // innermost.
    const std::size_t nTrh = grid.trhs.size();
    const std::size_t nRate = grid.swapRates.size();
    for (std::size_t ti = 0; ti < nTrh; ++ti) {
        for (std::size_t di = 0; di < grid.defenses.size(); ++di) {
            std::printf("%s  T_RH=%-8u",
                        di == 0 ? "SRS" : "RRS", grid.trhs[ti]);
            for (std::size_t ri = 0; ri < nRate; ++ri) {
                const SecurityResult &r =
                    results[(di * nTrh + ti) * nRate + ri];
                std::printf("%12.4g",
                            toDays(r.analytic.timeToBreakSec));
            }
            std::printf("\n");
        }
    }

    header("Section VIII-5: DDR5 (2x refresh) sanity check");
    SecurityGrid ddr5;
    ddr5.presets = {DramPreset::Ddr5};
    ddr5.defenses = {SecurityDefense::Rrs};
    ddr5.trhs = {3100};
    ddr5.swapRates = {6, 7, 8, 9, 10};
    const std::vector<SecurityResult> ddr5Results = sweep.run(ddr5);
    for (std::size_t ri = 0; ri < ddr5Results.size(); ++ri) {
        std::printf("RRS under DDR5, T_RH=3100, rate=%u: %.4g days\n",
                    ddr5.swapRates[ri],
                    toDays(ddr5Results[ri].analytic.timeToBreakSec));
    }
    return 0;
}
