/**
 * @file
 * Figure 1 reproduction.
 *
 * (a) Time-to-break RRS (in days) under the random-guess attack the
 *     RRS paper studied, across swap rates 2-10 and T_RH values
 *     {4800, 2400, 1200}.  Paper anchor: > 10^3 days at T_RH 4800
 *     with swap rate 6.
 * (b) Normalized performance of RRS as T_RH drops — the motivation
 *     for a scalable design.  The grid runs through SweepRunner
 *     (SRS_BENCH_THREADS overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 1(a): days to break RRS, random-guess attack");
    std::printf("%-10s", "swap-rate");
    for (std::uint32_t rate = 2; rate <= 10; ++rate)
        std::printf("%12u", rate);
    std::printf("\n");
    for (const std::uint32_t trh : {4800u, 2400u, 1200u}) {
        std::printf("T_RH=%-5u", trh);
        for (std::uint32_t rate = 2; rate <= 10; ++rate) {
            AttackParams p;
            p.trh = trh;
            p.swapRate = rate;
            const AttackResult r =
                JuggernautModel(p).evaluateRrs(0);
            if (r.feasible)
                std::printf("%12.3g", toDays(r.timeToBreakSec));
            else
                std::printf("%12s", "inf");
        }
        std::printf("\n");
    }

    header("Figure 1(b): normalized performance of RRS vs T_RH");
    const ExperimentConfig exp = benchExperiment();
    SweepGrid grid;
    grid.workloads = benchWorkloadSpecs();
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {4800, 2400, 1200};
    grid.swapRates = {6};
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(grid);

    std::printf("%-10s%12s%12s%12s\n", "T_RH", "4800", "2400", "1200");
    std::printf("%-10s", "RRS");
    // Expansion order: workloads outermost, then the three T_RHs.
    const std::size_t nTrh = grid.trhs.size();
    for (std::size_t ti = 0; ti < nTrh; ++ti) {
        std::vector<double> norms;
        for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi)
            norms.push_back(results[wi * nTrh + ti].normalized);
        std::printf("%12.4f", geoMean(norms));
    }
    std::printf("\n");
    return 0;
}
