/**
 * @file
 * Figure 1 reproduction.
 *
 * (a) Time-to-break RRS (in days) under the random-guess attack the
 *     RRS paper studied, across swap rates 2-10 and T_RH values
 *     {4800, 2400, 1200}, as one SecuritySweep grid with
 *     axes-derived AttackParams.  Paper anchor: > 10^3 days at
 *     T_RH 4800 with swap rate 6.
 * (b) Normalized performance of RRS as T_RH drops — the motivation
 *     for a scalable design.  The grid runs through SweepRunner
 *     (SRS_BENCH_THREADS overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/security_sweep.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Figure 1(a): days to break RRS, random-guess attack");
    // One SecuritySweep grid over (trh, rate) at N = 0 (the
    // random-guess-only attack), AttackParams derived from the
    // default ddr4 axes — the same cells as the security CSV rows.
    SecurityGrid secGrid;
    secGrid.defenses = {SecurityDefense::Rrs};
    secGrid.trhs = {4800, 2400, 1200};
    secGrid.swapRates = {2, 3, 4, 5, 6, 7, 8, 9, 10};
    secGrid.rounds = {0};
    SecuritySweep sweep(/*baseSeed=*/0x5EED, benchThreads());
    const std::vector<SecurityResult> secResults = sweep.run(secGrid);

    std::printf("%-10s", "swap-rate");
    for (const std::uint32_t rate : secGrid.swapRates)
        std::printf("%12u", rate);
    std::printf("\n");
    const std::size_t nRate = secGrid.swapRates.size();
    for (std::size_t ti = 0; ti < secGrid.trhs.size(); ++ti) {
        std::printf("T_RH=%-5u", secGrid.trhs[ti]);
        for (std::size_t ri = 0; ri < nRate; ++ri) {
            const AttackResult &r =
                secResults[ti * nRate + ri].analytic;
            if (r.feasible)
                std::printf("%12.3g", toDays(r.timeToBreakSec));
            else
                std::printf("%12s", "inf");
        }
        std::printf("\n");
    }

    header("Figure 1(b): normalized performance of RRS vs T_RH");
    const ExperimentConfig exp = benchExperiment();
    SweepGrid grid;
    grid.workloads = benchWorkloadSpecs();
    grid.mitigations = {MitigationKind::Rrs};
    grid.trhs = {4800, 2400, 1200};
    grid.swapRates = {6};
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(grid);

    std::printf("%-10s%12s%12s%12s\n", "T_RH", "4800", "2400", "1200");
    std::printf("%-10s", "RRS");
    // Expansion order: workloads outermost, then the three T_RHs.
    const std::size_t nTrh = grid.trhs.size();
    for (std::size_t ti = 0; ti < nTrh; ++ti) {
        std::vector<double> norms;
        for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi)
            norms.push_back(results[wi * nTrh + ti].normalized);
        std::printf("%12.4f", geoMean(norms));
    }
    std::printf("\n");
    return 0;
}
