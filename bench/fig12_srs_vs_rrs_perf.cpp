/**
 * @file
 * Figure 12 reproduction: normalized performance of SRS vs RRS
 * (same swap rate 6) at T_RH in {1200, 2400, 4800}.
 *
 * Paper shape: SRS and RRS track each other closely — preventing
 * Juggernaut costs nothing extra because the swap rate (the
 * bandwidth driver) is unchanged.
 *
 * The 2 x 3 x workloads grid runs through SweepRunner, so wall-clock
 * scales down with core count (SRS_BENCH_THREADS overrides).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();

    SweepGrid grid;
    grid.workloads = benchWorkloadSpecs();
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::Srs};
    grid.trhs = {1200, 2400, 4800};
    grid.swapRates = {6};

    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(grid);

    header("Figure 12: SRS vs RRS normalized performance");
    std::printf("%-14s%12s%12s%12s\n", "config", "T_RH=1200",
                "T_RH=2400", "T_RH=4800");
    // Grid expansion order: workloads, then mitigations, then trhs.
    const std::size_t nMit = grid.mitigations.size();
    const std::size_t nTrh = grid.trhs.size();
    for (std::size_t mi = 0; mi < nMit; ++mi) {
        std::printf("%-14s", mitigationKindName(grid.mitigations[mi]));
        for (std::size_t ti = 0; ti < nTrh; ++ti) {
            std::vector<double> norms;
            for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi)
                norms.push_back(
                    results[(wi * nMit + mi) * nTrh + ti].normalized);
            std::printf("%12.4f", geoMean(norms));
        }
        std::printf("\n");
    }
    return 0;
}
