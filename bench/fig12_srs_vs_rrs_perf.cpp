/**
 * @file
 * Figure 12 reproduction: normalized performance of SRS vs RRS
 * (same swap rate 6) at T_RH in {1200, 2400, 4800}.
 *
 * Paper shape: SRS and RRS track each other closely — preventing
 * Juggernaut costs nothing extra because the swap rate (the
 * bandwidth driver) is unchanged.
 */

#include "bench_util.hh"
#include "common/logging.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    BaselineCache base(exp);
    const auto workloads = benchWorkloads();

    header("Figure 12: SRS vs RRS normalized performance");
    std::printf("%-14s%12s%12s%12s\n", "config", "T_RH=1200",
                "T_RH=2400", "T_RH=4800");
    for (const MitigationKind kind :
         {MitigationKind::Rrs, MitigationKind::Srs}) {
        std::printf("%-14s", mitigationKindName(kind));
        for (const std::uint32_t trh : {1200u, 2400u, 4800u}) {
            std::vector<double> norms;
            for (const WorkloadProfile &w : workloads)
                norms.push_back(
                    normalized(base, exp, kind, trh, 6, w));
            std::printf("%12.4f", geoMean(norms));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
