/**
 * @file
 * Section VIII-5 and Section III-C reproductions.
 *
 * DDR5 (Section VIII-5): DDR5 refreshes twice as often, halving the
 * window an attack has to accumulate activations.  Paper anchor:
 * even so, Juggernaut breaks RRS in under 1 day regardless of swap
 * rate once T_RH <= 3100.
 *
 * Multi-bank (Section III-C): hammering B banks splits the per-bank
 * activation budget B ways.  Paper anchor: at T_RH 4800 and swap
 * rate 6, going from 1 bank to all 16 banks of a channel inflates
 * the attack time from ~4 hours to ~9.9 years — why the paper
 * analyzes the single-bank attack.
 *
 * Both the analytic DDR5 environment and the cycle-level ablation
 * are derived from the same `DramTimingNs::ddr5()` preset: the
 * attack-model knobs scale with the preset's tREFI/tRFC, and the
 * performance table rides SweepRunner with the DDR5 preset as a
 * SystemAxes axis (`ddr4` vs `ddr5` cells, each normalized against
 * the unprotected baseline of its *own* preset, pool-parallel,
 * SRS_BENCH_THREADS overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"
#include "sim/sweep.hh"

namespace
{

using namespace srs;

/**
 * DDR5 attack environment: the ddr5 preset on a SystemAxes identity,
 * run through the shared attackParamsFromAxes() derivation (tREFI
 * halves, so the refresh epoch and the refresh work done in it halve
 * with it, and tRC/tRFC take their DDR5 values).
 */
AttackParams
ddr5Params(std::uint32_t trh, std::uint32_t rate)
{
    SystemAxes axes;
    axes.preset = DramPreset::Ddr5;
    return attackParamsFromAxes(axes, trh, rate);
}

} // namespace

int
main()
{
    using namespace srs::bench;
    setQuietLogging(true);

    header("DDR5 (2x refresh): days to break RRS with Juggernaut");
    std::printf("%-10s", "T_RH");
    for (std::uint32_t rate = 6; rate <= 10; ++rate)
        std::printf("  rate=%-7u", rate);
    std::printf("  %s\n", "<1 day at all rates?");
    for (const std::uint32_t trh :
         {4800u, 3300u, 3100u, 2400u, 1200u}) {
        std::printf("%-10u", trh);
        double worst = 0.0;
        for (std::uint32_t rate = 6; rate <= 10; ++rate) {
            const AttackResult r =
                JuggernautModel(ddr5Params(trh, rate)).bestRrs();
            const double days =
                r.feasible ? toDays(r.timeToBreakSec) : 1e30;
            worst = std::max(worst, days);
            if (r.feasible)
                std::printf("  %-11.3g", days);
            else
                std::printf("  %-11s", "inf");
        }
        std::printf("  %s\n", worst < 1.0 ? "yes" : "no");
    }
    std::printf("(anchor: 'yes' for every T_RH <= 3100)\n");

    header("multi-bank attack (Section III-C), T_RH=4800 rate=6");
    std::printf("%-8s %16s %16s\n", "banks", "time-to-break",
                "vs single bank");
    double single = 0.0;
    for (const std::uint32_t banks : {1u, 2u, 4u, 8u, 11u, 16u}) {
        const AttackParams p =
            attackParamsFromAxes(SystemAxes{}, 4800, 6);
        const AttackResult r =
            JuggernautModel(p).evaluateRrsMultiBank(banks);
        const double days =
            r.feasible ? toDays(r.timeToBreakSec) : 1e30;
        if (banks == 1)
            single = days;
        if (days < 1.0)
            std::printf("%-8u %13.2f h %15.1fx\n", banks,
                        days * 24.0, days / single);
        else if (days < 365.0)
            std::printf("%-8u %13.2f d %15.1fx\n", banks, days,
                        days / single);
        else
            std::printf("%-8u %13.2f y %15.0fx\n", banks,
                        days / 365.0, days / single);
    }
    std::printf("(anchor: ~4 hours at 1 bank, ~9.9 years at 16 "
                "banks)\n");

    header("cycle-level: normalized perf, DDR4 vs DDR5 preset");
    ExperimentConfig exp = benchExperiment();
    const std::vector<WorkloadSpec> workloads = benchWorkloadSpecs();
    struct Point
    {
        const char *label;
        MitigationKind kind;
        std::uint32_t rate;
    };
    const Point points[] = {
        {"scale-srs", MitigationKind::ScaleSrs, 3},
        {"rrs", MitigationKind::Rrs, 6},
    };
    const DramPreset presets[] = {DramPreset::Ddr4, DramPreset::Ddr5};

    // One sweep cell per (workload, design point, preset); the
    // runner computes and shares one unprotected baseline per
    // (workload, preset) pair, so a DDR5 cell normalizes against
    // the DDR5 machine's own baseline — the doubled refresh rate
    // costs the baseline bandwidth too.
    std::vector<SweepCell> cells;
    for (const WorkloadSpec &w : workloads) {
        for (const Point &pt : points) {
            for (const DramPreset preset : presets) {
                SweepCell cell;
                cell.workload = w;
                cell.axes.preset = preset;
                cell.mitigation = pt.kind;
                cell.trh = 1200;
                cell.swapRate = pt.rate;
                cells.push_back(std::move(cell));
            }
        }
    }
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    std::printf("%-14s %10s %10s\n", "config", "ddr4", "ddr5");
    const std::size_t nPt = std::size(points);
    const std::size_t nPre = std::size(presets);
    for (std::size_t pi = 0; pi < nPt; ++pi) {
        std::printf("%-14s", points[pi].label);
        for (std::size_t qi = 0; qi < nPre; ++qi) {
            std::vector<double> norms;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                norms.push_back(
                    results[(wi * nPt + pi) * nPre + qi].normalized);
            }
            std::printf(" %10.4f", geoMean(norms));
        }
        std::printf("\n");
    }
    return 0;
}
