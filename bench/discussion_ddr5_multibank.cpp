/**
 * @file
 * Section VIII-5 and Section III-C reproductions.
 *
 * DDR5 (Section VIII-5): DDR5 refreshes twice as often, halving the
 * window an attack has to accumulate activations.  Paper anchor:
 * even so, Juggernaut breaks RRS in under 1 day regardless of swap
 * rate once T_RH <= 3100.
 *
 * Multi-bank (Section III-C): hammering B banks splits the per-bank
 * activation budget B ways.  Paper anchor: at T_RH 4800 and swap
 * rate 6, going from 1 bank to all 16 banks of a channel inflates
 * the attack time from ~4 hours to ~9.9 years — why the paper
 * analyzes the single-bank attack.
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"

namespace
{

using namespace srs;

/** DDR5 environment: half the refresh window. */
AttackParams
ddr5Params(std::uint32_t trh, std::uint32_t rate)
{
    AttackParams p;
    p.trh = trh;
    p.swapRate = rate;
    p.epochSec = 32e-3;
    p.refreshOpsPerEpoch = 4096;
    return p;
}

} // namespace

int
main()
{
    using namespace srs::bench;
    setQuietLogging(true);

    header("DDR5 (2x refresh): days to break RRS with Juggernaut");
    std::printf("%-10s", "T_RH");
    for (std::uint32_t rate = 6; rate <= 10; ++rate)
        std::printf("  rate=%-7u", rate);
    std::printf("  %s\n", "<1 day at all rates?");
    for (const std::uint32_t trh :
         {4800u, 3300u, 3100u, 2400u, 1200u}) {
        std::printf("%-10u", trh);
        double worst = 0.0;
        for (std::uint32_t rate = 6; rate <= 10; ++rate) {
            const AttackResult r =
                JuggernautModel(ddr5Params(trh, rate)).bestRrs();
            const double days =
                r.feasible ? toDays(r.timeToBreakSec) : 1e30;
            worst = std::max(worst, days);
            if (r.feasible)
                std::printf("  %-11.3g", days);
            else
                std::printf("  %-11s", "inf");
        }
        std::printf("  %s\n", worst < 1.0 ? "yes" : "no");
    }
    std::printf("(anchor: 'yes' for every T_RH <= 3100)\n");

    header("multi-bank attack (Section III-C), T_RH=4800 rate=6");
    std::printf("%-8s %16s %16s\n", "banks", "time-to-break",
                "vs single bank");
    double single = 0.0;
    for (const std::uint32_t banks : {1u, 2u, 4u, 8u, 11u, 16u}) {
        AttackParams p;
        p.trh = 4800;
        p.swapRate = 6;
        const AttackResult r =
            JuggernautModel(p).evaluateRrsMultiBank(banks);
        const double days =
            r.feasible ? toDays(r.timeToBreakSec) : 1e30;
        if (banks == 1)
            single = days;
        if (days < 1.0)
            std::printf("%-8u %13.2f h %15.1fx\n", banks,
                        days * 24.0, days / single);
        else if (days < 365.0)
            std::printf("%-8u %13.2f d %15.1fx\n", banks, days,
                        days / single);
        else
            std::printf("%-8u %13.2f y %15.0fx\n", banks,
                        days / 365.0, days / single);
    }
    std::printf("(anchor: ~4 hours at 1 bank, ~9.9 years at 16 "
                "banks)\n");
    return 0;
}
