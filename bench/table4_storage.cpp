/**
 * @file
 * Table IV reproduction: per-bank on-chip storage of RRS vs
 * Scale-SRS at T_RH in {4800, 2400, 1200}, plus the Section VIII-4
 * single-table optimization.
 *
 * Paper anchor: ~3.3x total savings at T_RH = 1200.
 */

#include <cstdio>

#include "security/storage_model.hh"

int
main()
{
    using namespace srs;

    std::printf("==== Table IV: storage overhead per bank ====\n");
    for (const std::uint32_t trh : {4800u, 2400u, 1200u}) {
        StorageParams p;
        p.trh = trh;
        // The pin-buffer grows slightly at lower T_RH (paper: 289 B
        // at 4800, 420 B below).
        p.pinBufferEntries = trh >= 4800 ? 66 : 96;
        StorageModel m(p);
        std::printf("\n-- T_RH = %u --\n", trh);
        std::printf("%-20s%14s%14s\n", "Structure", "RRS",
                    "Scale-SRS");
        for (const StorageLine &line : m.breakdown()) {
            std::printf("%-20s%13.1fK%13.1fK\n",
                        line.structure.c_str(),
                        line.rrsBytes / 1024.0,
                        line.scaleSrsBytes / 1024.0);
        }
        std::printf("%-20s%13.1fK%13.1fK   ratio %.2fx\n", "Total",
                    m.totalRrsBytes() / 1024.0,
                    m.totalScaleSrsBytes() / 1024.0,
                    m.savingsRatio());
        std::printf("%-20s%14s%13.1fK\n",
                    "(VIII-4 single RIT)", "-",
                    m.ritBytesScaleSrsSingleTable() / 1024.0);
    }
    return 0;
}
