/**
 * @file
 * Ablation: how the swap rate trades performance against security —
 * the design decision at the heart of Scale-SRS (Section V-B).
 *
 * Part 1 sweeps the swap rate for SRS-style defenses at T_RH = 1200
 * and reports normalized performance: lower rates swap less and run
 * faster.
 *
 * Part 2 re-runs the Figure 13 outlier analysis across the same
 * rates: lower rates make multi-swap outlier rows more frequent,
 * which is exactly what Scale-SRS's swap-count detection plus LLC
 * pinning absorbs.  Together the two halves justify the paper's
 * choice of rate 3 (with pinning) over RRS's rate 6 (without).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/outlier_model.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    // The analytic outlier sweep covers all rates; the cycle-level
    // perf sweep uses the design-relevant subset to bound runtime.
    const std::uint32_t allRates[] = {2, 3, 4, 6, 8};
    const std::uint32_t rates[] = {3, 6, 8};

    header("performance vs swap rate (T_RH = 1200, geomean)");
    ExperimentConfig exp = benchExperiment();
    BaselineCache base(exp);
    const auto workloads = benchWorkloads();
    std::printf("%-12s", "defense");
    for (const std::uint32_t rate : rates)
        std::printf("  rate=%-6u", rate);
    std::printf("\n");
    for (const MitigationKind kind :
         {MitigationKind::ScaleSrs, MitigationKind::Srs}) {
        std::printf("%-12s", mitigationKindName(kind));
        for (const std::uint32_t rate : rates) {
            std::vector<double> norms;
            for (const WorkloadProfile &w : workloads)
                norms.push_back(
                    normalized(base, exp, kind, 1200, rate, w));
            std::printf("  %-11.4f", geoMean(norms));
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    header("security vs swap rate: outlier-row exposure (Fig 13)");
    std::printf("%-10s %18s %20s\n", "rate",
                "days to 3 outliers", "days to 4 outliers");
    for (const std::uint32_t rate : allRates) {
        OutlierParams p;
        p.trh = 4800;
        p.swapRate = rate;
        OutlierModel model(p);
        std::printf("%-10u %18.3g %20.3g\n", rate,
                    toDays(model.timeToAppearSec(3)),
                    toDays(model.timeToAppearSec(4)));
    }
    std::printf("(paper anchors at T_RH 4800: rate 3 -> 3 outliers "
                "every ~31 days,\n 4 outliers every ~64 years; the "
                "pin-buffer covers them)\n");
    return 0;
}
