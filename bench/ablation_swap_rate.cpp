/**
 * @file
 * Ablation: how the swap rate trades performance against security —
 * the design decision at the heart of Scale-SRS (Section V-B).
 *
 * Part 1 sweeps the swap rate for SRS-style defenses at T_RH = 1200
 * and reports normalized performance: lower rates swap less and run
 * faster.
 *
 * Part 2 re-runs the Figure 13 outlier analysis across the same
 * rates: lower rates make multi-swap outlier rows more frequent,
 * which is exactly what Scale-SRS's swap-count detection plus LLC
 * pinning absorbs.  Together the two halves justify the paper's
 * choice of rate 3 (with pinning) over RRS's rate 6 (without).
 *
 * The perf grid runs through SweepRunner (SRS_BENCH_THREADS
 * overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/outlier_model.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    // The analytic outlier sweep covers all rates; the cycle-level
    // perf sweep uses the design-relevant subset to bound runtime.
    const std::uint32_t allRates[] = {2, 3, 4, 6, 8};

    header("performance vs swap rate (T_RH = 1200, geomean)");
    ExperimentConfig exp = benchExperiment();
    SweepGrid grid;
    grid.workloads = benchWorkloadSpecs();
    grid.mitigations = {MitigationKind::ScaleSrs, MitigationKind::Srs};
    grid.trhs = {1200};
    grid.swapRates = {3, 6, 8};
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(grid);

    std::printf("%-12s", "defense");
    for (const std::uint32_t rate : grid.swapRates)
        std::printf("  rate=%-6u", rate);
    std::printf("\n");
    // Expansion order: workloads, then mitigations, then rates.
    const std::size_t nMit = grid.mitigations.size();
    const std::size_t nRate = grid.swapRates.size();
    for (std::size_t mi = 0; mi < nMit; ++mi) {
        std::printf("%-12s", mitigationKindName(grid.mitigations[mi]));
        for (std::size_t ri = 0; ri < nRate; ++ri) {
            std::vector<double> norms;
            for (std::size_t wi = 0; wi < grid.workloads.size(); ++wi)
                norms.push_back(
                    results[(wi * nMit + mi) * nRate + ri].normalized);
            std::printf("  %-11.4f", geoMean(norms));
        }
        std::printf("\n");
    }

    header("security vs swap rate: outlier-row exposure (Fig 13)");
    std::printf("%-10s %18s %20s\n", "rate",
                "days to 3 outliers", "days to 4 outliers");
    for (const std::uint32_t rate : allRates) {
        OutlierParams p;
        p.trh = 4800;
        p.swapRate = rate;
        OutlierModel model(p);
        std::printf("%-10u %18.3g %20.3g\n", rate,
                    toDays(model.timeToAppearSec(3)),
                    toDays(model.timeToAppearSec(4)));
    }
    std::printf("(paper anchors at T_RH 4800: rate 3 -> 3 outliers "
                "every ~31 days,\n 4 outliers every ~64 years; the "
                "pin-buffer covers them)\n");
    return 0;
}
