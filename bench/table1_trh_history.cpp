/**
 * @file
 * Table I reproduction: demonstrated Row Hammer thresholds across
 * DRAM generations (2014-2021), plus the derived scaling factor the
 * paper's motivation rests on (29x in 8 years).
 */

#include <cstdio>

int
main()
{
    struct Row
    {
        const char *generation;
        const char *threshold;
        double trh;
    };
    const Row rows[] = {
        {"DDR3 (old)", "139K", 139000},
        {"DDR3 (new)", "22.4K", 22400},
        {"DDR4 (old)", "17.5K", 17500},
        {"DDR4 (new)", "10K", 10000},
        {"LPDDR4 (old)", "16.8K", 16800},
        {"LPDDR4 (new)", "4.8K - 9K", 4800},
    };

    std::printf("==== Table I: Row Hammer threshold, 2014-2021 ====\n");
    std::printf("%-16s%16s\n", "DRAM Generation", "RH-Threshold");
    for (const Row &r : rows)
        std::printf("%-16s%16s\n", r.generation, r.threshold);
    std::printf("\nscaling: %.0fx reduction from DDR3 (old) to "
                "LPDDR4 (new)\n",
                rows[0].trh / rows[5].trh);
    return 0;
}
