/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.  All
 * multi-configuration benches run their grids through SweepRunner
 * (sim/sweep.hh), which owns the baseline runs and normalization.
 *
 * Environment knobs:
 *  - SRS_BENCH_CYCLES:  simulated CPU cycles per run (default 1.2M)
 *  - SRS_BENCH_FULL:    nonzero -> run every workload in the profile
 *                       table instead of the representative subset
 *  - SRS_BENCH_THREADS: sweep worker threads for the multi-config
 *                       benches (default 0 = hardware concurrency)
 */

#ifndef SRS_BENCH_BENCH_UTIL_HH
#define SRS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/profiles.hh"

namespace srs::bench
{

/** Experiment config honouring the environment knobs. */
inline ExperimentConfig
benchExperiment()
{
    ExperimentConfig exp;
    exp.cycles = 1'200'000;
    if (const char *env = std::getenv("SRS_BENCH_CYCLES"))
        exp.cycles = static_cast<Cycle>(std::strtoull(env, nullptr, 10));
    // Two full refresh epochs per run so epoch-boundary work (lazy
    // place-backs, the no-unswap restore burst) lands inside the
    // measurement window.
    exp.epochLen = exp.cycles / 2 - 10'000;
    return exp;
}

/** Sweep worker-thread count honouring SRS_BENCH_THREADS. */
inline std::size_t
benchThreads()
{
    if (const char *env = std::getenv("SRS_BENCH_THREADS"))
        return static_cast<std::size_t>(
            std::strtoull(env, nullptr, 10));
    return 0; // hardware concurrency
}

/** Representative per-suite workload subset used by default. */
inline std::vector<WorkloadProfile>
benchWorkloads()
{
    if (const char *env = std::getenv("SRS_BENCH_FULL");
        env != nullptr && env[0] != '0') {
        return allProfiles();
    }
    std::vector<WorkloadProfile> out;
    for (const char *name :
         {"gups", "gcc", "hmmer", "mcf", "xz_17", "comm1"}) {
        out.push_back(profileByName(name));
    }
    return out;
}

/** The default workload subset as sweep-grid WorkloadSpecs. */
inline std::vector<WorkloadSpec>
benchWorkloadSpecs()
{
    std::vector<WorkloadSpec> specs;
    for (const WorkloadProfile &w : benchWorkloads())
        specs.push_back(WorkloadSpec::synthetic(w.name));
    return specs;
}

/** Pretty header for a bench section. */
inline void
header(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/** Format seconds as days for the security figures. */
inline double
toDays(double sec)
{
    return sec / 86400.0;
}

} // namespace srs::bench

#endif // SRS_BENCH_BENCH_UTIL_HH
