/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.
 *
 * Environment knobs:
 *  - SRS_BENCH_CYCLES:  simulated CPU cycles per run (default 1.2M)
 *  - SRS_BENCH_FULL:    nonzero -> run every workload in the profile
 *                       table instead of the representative subset
 *  - SRS_BENCH_THREADS: sweep worker threads for the multi-config
 *                       benches (default 0 = hardware concurrency)
 */

#ifndef SRS_BENCH_BENCH_UTIL_HH
#define SRS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/profiles.hh"

namespace srs::bench
{

/** Experiment config honouring the environment knobs. */
inline ExperimentConfig
benchExperiment()
{
    ExperimentConfig exp;
    exp.cycles = 1'200'000;
    if (const char *env = std::getenv("SRS_BENCH_CYCLES"))
        exp.cycles = static_cast<Cycle>(std::strtoull(env, nullptr, 10));
    // Two full refresh epochs per run so epoch-boundary work (lazy
    // place-backs, the no-unswap restore burst) lands inside the
    // measurement window.
    exp.epochLen = exp.cycles / 2 - 10'000;
    return exp;
}

/** Sweep worker-thread count honouring SRS_BENCH_THREADS. */
inline std::size_t
benchThreads()
{
    if (const char *env = std::getenv("SRS_BENCH_THREADS"))
        return static_cast<std::size_t>(
            std::strtoull(env, nullptr, 10));
    return 0; // hardware concurrency
}

/** Representative per-suite workload subset used by default. */
inline std::vector<WorkloadProfile>
benchWorkloads()
{
    if (const char *env = std::getenv("SRS_BENCH_FULL");
        env != nullptr && env[0] != '0') {
        return allProfiles();
    }
    std::vector<WorkloadProfile> out;
    for (const char *name :
         {"gups", "gcc", "hmmer", "mcf", "xz_17", "comm1"}) {
        out.push_back(profileByName(name));
    }
    return out;
}

/** Cache of baseline IPCs: the unprotected system is T_RH-agnostic. */
class BaselineCache
{
  public:
    explicit BaselineCache(const ExperimentConfig &exp) : exp_(exp) {}

    double
    ipcOf(const WorkloadProfile &profile)
    {
        const auto it = cache_.find(profile.name);
        if (it != cache_.end())
            return it->second;
        const SystemConfig cfg =
            makeSystemConfig(exp_, MitigationKind::None, 4800, 6);
        const double ipc =
            runWorkload(cfg, profile, exp_).aggregateIpc;
        cache_.emplace(profile.name, ipc);
        return ipc;
    }

  private:
    ExperimentConfig exp_;
    std::map<std::string, double> cache_;
};

/** Normalized performance of one protected run. */
inline double
normalized(BaselineCache &base, const ExperimentConfig &exp,
           MitigationKind kind, std::uint32_t trh, std::uint32_t rate,
           const WorkloadProfile &profile,
           TrackerKind tracker = TrackerKind::MisraGries)
{
    const SystemConfig cfg =
        makeSystemConfig(exp, kind, trh, rate, tracker);
    const double ipc = runWorkload(cfg, profile, exp).aggregateIpc;
    const double b = base.ipcOf(profile);
    return b > 0.0 ? ipc / b : 1.0;
}

/** Pretty header for a bench section. */
inline void
header(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/** Format seconds as days for the security figures. */
inline double
toDays(double sec)
{
    return sec / 86400.0;
}

} // namespace srs::bench

#endif // SRS_BENCH_BENCH_UTIL_HH
