/**
 * @file
 * Section VIII-3 reproduction: Juggernaut under an open-page
 * memory controller, plus the matching cycle-level performance
 * ablation.
 *
 * Paper anchors:
 *  - closed page, T_RH 4800, swap rate 6: RRS breaks in ~4 hours;
 *  - open page, same point: ~10 days (the attacker must interleave
 *    a second row to force each activation, roughly doubling the
 *    per-activation time);
 *  - T_RH <= 3300: broken in < 1 day even at swap rate 10, open
 *    page — the advantage disappears as T_RH drops.
 *
 * The cycle-level ablation rides SweepRunner with the page policy
 * as a SystemAxes axis: one cell per (workload, policy, design
 * point), each normalized against the unprotected baseline of the
 * *same* policy, all pool-parallel (SRS_BENCH_THREADS overrides).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "security/attack_model.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Juggernaut vs RRS: closed vs open page (days to break)");
    std::printf("%-22s", "policy");
    for (std::uint32_t rate = 6; rate <= 10; ++rate)
        std::printf("  rate=%-6u", rate);
    std::printf("\n");
    for (const std::uint32_t trh : {4800u, 3300u, 2400u, 1200u}) {
        for (const bool open : {false, true}) {
            std::printf("T_RH=%-5u %-11s", trh,
                        open ? "open" : "closed");
            for (std::uint32_t rate = 6; rate <= 10; ++rate) {
                SystemAxes axes;
                axes.pagePolicy =
                    open ? PagePolicy::Open : PagePolicy::Closed;
                const AttackParams p =
                    attackParamsFromAxes(axes, trh, rate);
                const AttackResult r = JuggernautModel(p).bestRrs();
                if (r.feasible)
                    std::printf("  %-10.3g",
                                toDays(r.timeToBreakSec));
                else
                    std::printf("  %-10s", "inf");
            }
            std::printf("\n");
        }
    }
    std::printf("(anchors: closed/4800/rate6 ~ 0.17 days; open "
                "~ 10 days;\n T_RH <= 3300 open page stays < 1 day "
                "through rate 10)\n");

    header("cycle-level: normalized perf, closed vs open page");
    ExperimentConfig exp = benchExperiment();
    const auto workloads = benchWorkloads();
    struct Point
    {
        const char *label;
        MitigationKind kind;
        std::uint32_t rate;
    };
    const Point points[] = {
        {"scale-srs", MitigationKind::ScaleSrs, 3},
        {"rrs", MitigationKind::Rrs, 6},
    };
    const PagePolicy policies[] = {PagePolicy::Closed,
                                   PagePolicy::Open};

    // One sweep cell per (workload, design point, policy); the
    // runner computes and shares one unprotected baseline per
    // (workload, policy) pair, so each cell normalizes against the
    // baseline of its own page policy.
    std::vector<SweepCell> cells;
    for (const WorkloadProfile &w : workloads) {
        for (const Point &pt : points) {
            for (const PagePolicy policy : policies) {
                SweepCell cell;
                cell.workload = WorkloadSpec::synthetic(w.name);
                cell.axes.pagePolicy = policy;
                cell.mitigation = pt.kind;
                cell.trh = 1200;
                cell.swapRate = pt.rate;
                cells.push_back(std::move(cell));
            }
        }
    }
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    std::printf("%-14s %10s %10s\n", "config", "closed", "open");
    const std::size_t nPt = std::size(points);
    const std::size_t nPol = std::size(policies);
    for (std::size_t pi = 0; pi < nPt; ++pi) {
        std::printf("%-14s", points[pi].label);
        for (std::size_t qi = 0; qi < nPol; ++qi) {
            std::vector<double> norms;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                norms.push_back(
                    results[(wi * nPt + pi) * nPol + qi].normalized);
            }
            std::printf(" %10.4f", geoMean(norms));
        }
        std::printf("\n");
    }
    return 0;
}
