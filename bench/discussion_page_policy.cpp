/**
 * @file
 * Section VIII-3 reproduction: Juggernaut under an open-page
 * memory controller, plus the matching cycle-level performance
 * ablation.
 *
 * Paper anchors:
 *  - closed page, T_RH 4800, swap rate 6: RRS breaks in ~4 hours;
 *  - open page, same point: ~10 days (the attacker must interleave
 *    a second row to force each activation, roughly doubling the
 *    per-activation time);
 *  - T_RH <= 3300: broken in < 1 day even at swap rate 10, open
 *    page — the advantage disappears as T_RH drops.
 */

#include "bench_util.hh"
#include <map>
#include "common/logging.hh"
#include "security/attack_model.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    header("Juggernaut vs RRS: closed vs open page (days to break)");
    std::printf("%-22s", "policy");
    for (std::uint32_t rate = 6; rate <= 10; ++rate)
        std::printf("  rate=%-6u", rate);
    std::printf("\n");
    for (const std::uint32_t trh : {4800u, 3300u, 2400u, 1200u}) {
        for (const bool open : {false, true}) {
            std::printf("T_RH=%-5u %-11s", trh,
                        open ? "open" : "closed");
            for (std::uint32_t rate = 6; rate <= 10; ++rate) {
                AttackParams p;
                p.trh = trh;
                p.swapRate = rate;
                p.actTimeFactor = open ? kOpenPageActFactor : 1.0;
                const AttackResult r = JuggernautModel(p).bestRrs();
                if (r.feasible)
                    std::printf("  %-10.3g",
                                toDays(r.timeToBreakSec));
                else
                    std::printf("  %-10s", "inf");
            }
            std::printf("\n");
        }
    }
    std::printf("(anchors: closed/4800/rate6 ~ 0.17 days; open "
                "~ 10 days;\n T_RH <= 3300 open page stays < 1 day "
                "through rate 10)\n");

    header("cycle-level: normalized perf, closed vs open page");
    ExperimentConfig exp = benchExperiment();
    const auto workloads = benchWorkloads();
    std::printf("%-14s %10s %10s\n", "config", "closed", "open");
    struct Point
    {
        const char *label;
        MitigationKind kind;
        std::uint32_t rate;
    };
    const Point points[] = {
        {"scale-srs", MitigationKind::ScaleSrs, 3},
        {"rrs", MitigationKind::Rrs, 6},
    };
    // Per-policy baseline IPCs, computed once and shared by both
    // defenses (the unprotected system is defense-agnostic).
    std::map<int, std::vector<double>> baseIpc;
    for (const PagePolicy policy :
         {PagePolicy::Closed, PagePolicy::Open}) {
        for (const WorkloadProfile &w : workloads) {
            SystemConfig base =
                makeSystemConfig(exp, MitigationKind::None, 1200, 6);
            base.memCtrl.pagePolicy = policy;
            baseIpc[static_cast<int>(policy)].push_back(
                runWorkload(base, w, exp).aggregateIpc);
        }
    }
    for (const Point &pt : points) {
        std::printf("%-14s", pt.label);
        for (const PagePolicy policy :
             {PagePolicy::Closed, PagePolicy::Open}) {
            std::vector<double> norms;
            for (std::size_t i = 0; i < workloads.size(); ++i) {
                SystemConfig cfg = makeSystemConfig(
                    exp, pt.kind, 1200, pt.rate);
                cfg.memCtrl.pagePolicy = policy;
                const double ipc =
                    runWorkload(cfg, workloads[i], exp).aggregateIpc;
                const double b =
                    baseIpc[static_cast<int>(policy)][i];
                norms.push_back(b > 0 ? ipc / b : 1.0);
            }
            std::printf(" %10.4f", geoMean(norms));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
