/**
 * @file
 * Figure 16 reproduction: T_RH sensitivity with the Hydra tracker.
 *
 * Paper shape: Hydra stores row counters in DRAM, so at low T_RH the
 * counter-cache misses of a high swap rate hurt RRS far more than
 * Scale-SRS (26.8% vs 5.9% at T_RH = 512).
 *
 * The 2 x 4 x workloads grid runs through SweepRunner
 * (SRS_BENCH_THREADS overrides the worker count).
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    // Hydra runs are heavier; use a smaller subset by default.
    const char *const workloads[] = {"gups", "gcc", "hmmer", "pr",
                                     "comm1"};
    struct Point { MitigationKind kind; std::uint32_t rate; };
    const Point points[] = {{MitigationKind::Rrs, 6},
                            {MitigationKind::ScaleSrs, 3}};
    const std::uint32_t trhs[] = {512, 1200, 2400, 4800};

    std::vector<SweepCell> cells;
    for (const char *name : workloads) {
        for (const Point pt : points) {
            for (const std::uint32_t trh : trhs) {
                SweepCell cell;
                cell.workload = WorkloadSpec::synthetic(name);
                cell.mitigation = pt.kind;
                cell.trh = trh;
                cell.swapRate = pt.rate;
                cell.tracker = TrackerKind::Hydra;
                cells.push_back(std::move(cell));
            }
        }
    }
    SweepRunner runner(exp, benchThreads());
    const std::vector<SweepResult> results = runner.run(cells);

    header("Figure 16: T_RH sensitivity (Hydra tracker)");
    std::printf("%-14s%12s%12s%12s%12s\n", "config", "T_RH=512",
                "T_RH=1200", "T_RH=2400", "T_RH=4800");
    const std::size_t nPt = std::size(points);
    const std::size_t nTrh = std::size(trhs);
    for (std::size_t pi = 0; pi < nPt; ++pi) {
        std::printf("%-14s", mitigationKindName(points[pi].kind));
        for (std::size_t ti = 0; ti < nTrh; ++ti) {
            std::vector<double> norms;
            for (std::size_t wi = 0; wi < std::size(workloads); ++wi)
                norms.push_back(
                    results[(wi * nPt + pi) * nTrh + ti].normalized);
            std::printf("%12.4f", geoMean(norms));
        }
        std::printf("\n");
    }
    return 0;
}
