/**
 * @file
 * Figure 16 reproduction: T_RH sensitivity with the Hydra tracker.
 *
 * Paper shape: Hydra stores row counters in DRAM, so at low T_RH the
 * counter-cache misses of a high swap rate hurt RRS far more than
 * Scale-SRS (26.8% vs 5.9% at T_RH = 512).
 */

#include "bench_util.hh"
#include "common/logging.hh"

int
main()
{
    using namespace srs;
    using namespace srs::bench;
    setQuietLogging(true);

    const ExperimentConfig exp = benchExperiment();
    BaselineCache base(exp);
    // Hydra runs are heavier; use a smaller subset by default.
    std::vector<WorkloadProfile> workloads;
    for (const char *name : {"gups", "gcc", "hmmer", "pr", "comm1"})
        workloads.push_back(profileByName(name));

    header("Figure 16: T_RH sensitivity (Hydra tracker)");
    std::printf("%-14s%12s%12s%12s%12s\n", "config", "T_RH=512",
                "T_RH=1200", "T_RH=2400", "T_RH=4800");
    struct Point { MitigationKind kind; std::uint32_t rate; };
    for (const Point pt : {Point{MitigationKind::Rrs, 6},
                           Point{MitigationKind::ScaleSrs, 3}}) {
        std::printf("%-14s", mitigationKindName(pt.kind));
        for (const std::uint32_t trh : {512u, 1200u, 2400u, 4800u}) {
            std::vector<double> norms;
            for (const WorkloadProfile &w : workloads)
                norms.push_back(normalized(base, exp, pt.kind, trh,
                                           pt.rate, w,
                                           TrackerKind::Hydra));
            std::printf("%12.4f", geoMean(norms));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
