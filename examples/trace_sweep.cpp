/**
 * @file
 * Bring-your-own-trace sweeps, end to end: record a synthetic
 * workload as a USIMM trace file with TraceWriter, then drive the
 * recorded file through the full experiment pipeline next to a
 * synthetic workload —
 *
 *  1. a WorkloadSpec trace cell (`trace:<path>`) swept across the
 *     page-policy axis by SweepRunner (single process, thread-pool
 *     parallel);
 *  2. the same grid split with planShards(), each shard run
 *     separately (as `srs_sim sweep` would on another machine) and
 *     stitched back with mergeShards().
 *
 * The merged CSV must be byte-identical to the single-process sweep
 * — the determinism contract that makes recorded-trace campaigns
 * shardable.  Exits nonzero when it is not (CI runs this binary).
 *
 * Usage: trace_sweep [work-dir]   (default /tmp/srs_trace_sweep)
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "sim/orchestrator.hh"
#include "sim/sweep.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace srs;
    setQuietLogging(true);

    const std::string dir =
        argc > 1 ? argv[1] : "/tmp/srs_trace_sweep";
    std::filesystem::create_directories(dir);
    const std::string tracePath = dir + "/gups_recorded.usimm";

    ExperimentConfig exp;
    exp.cycles = 150'000;
    exp.epochLen = 60'000;

    // --- 1. record: synthetic stream -> USIMM trace file ----------
    {
        const DramOrg org;
        const AddressMap map(org);
        SyntheticTrace source(profileByName("gups"), map, /*core=*/0,
                              exp.seed);
        TraceWriter writer(tracePath);
        for (std::uint64_t i = 0; i < 20'000; ++i)
            writer.append(source.next());
        std::printf("recorded %llu records to %s\n",
                    static_cast<unsigned long long>(
                        writer.recordsWritten()),
                    tracePath.c_str());
    }

    // --- 2. sweep: the recorded file is a workload like any other -
    SweepGrid grid;
    grid.workloads = {
        WorkloadSpec::synthetic("gcc"),
        WorkloadSpec::parse("trace:" + tracePath, exp.numCores),
    };
    grid.pagePolicies = {PagePolicy::Closed, PagePolicy::Open};
    grid.mitigations = {MitigationKind::Rrs, MitigationKind::ScaleSrs};
    grid.trhs = {1200};
    grid.swapRates = {3};

    std::string single;
    {
        SweepRunner runner(exp, /*threads=*/0);
        std::ostringstream os;
        SweepRunner::writeCsv(os, runner.run(grid));
        single = os.str();
        std::printf("single-process sweep: %zu cells\n",
                    grid.expand().size());
    }

    // --- 3. shard + merge: what orchestrate/merge do across
    //        processes, here in-process for a self-contained demo --
    ShardManifest manifest = planShards(grid, exp, /*shards=*/2);
    writeManifest(manifest, dir + "/manifest");
    for (const ShardSpec &shard : manifest.shards) {
        SweepRunner runner(exp, /*threads=*/2);
        std::ofstream out(dir + "/" + shard.csv,
                          std::ios::trunc | std::ios::binary);
        SweepRunner::writeCsv(out, runner.run(shard.grid));
    }
    std::ostringstream merged;
    mergeShards(manifest, dir, merged);
    std::printf("merged %zu shards (%zu cells)\n",
                manifest.shards.size(), manifest.totalCells());

    if (merged.str() != single) {
        std::fprintf(stderr, "FAIL: merged CSV differs from the "
                             "single-process sweep\n");
        return 1;
    }
    std::printf("merged CSV is byte-identical to the single-process "
                "sweep\n");

    // The same campaign from the CLI:
    std::printf(
        "\nCLI equivalent:\n"
        "  srs_sim trace --workload=gups --records=20000 "
        "--out=%s\n"
        "  srs_sim orchestrate --workloads=gcc --trace=%s \\\n"
        "      --page-policy=closed,open --mitigations=rrs,scale-srs "
        "\\\n"
        "      --trh=1200 --rates=3 --shards=2 --out=sweep.csv\n",
        tracePath.c_str(), tracePath.c_str());
    return 0;
}
