/**
 * @file
 * Security case study: the Juggernaut attack against RRS vs SRS.
 *
 * Three views of the same story:
 *  1. the analytical model (paper Eq. 1-10): the attacker's optimal
 *     round count and the resulting time-to-break;
 *  2. Monte-Carlo simulation of the attack process;
 *  3. a cycle-level end-to-end run: an attacker trace hammers one
 *     logical row through the full memory system, and we inspect the
 *     Row Hammer ground truth (per-physical-row activation counts)
 *     to see the latent-activation bias appear under RRS and vanish
 *     under SRS.
 *
 * Usage: attack_study [trh] [swapRate]   (defaults: 4800 6)
 */

#include <cstdio>
#include <cstdlib>

#include "security/attack_model.hh"
#include "security/monte_carlo.hh"
#include "sim/experiment.hh"
#include "trace/attack.hh"

namespace
{

void
analyticalView(std::uint32_t trh, std::uint32_t rate)
{
    using namespace srs;
    AttackParams p;
    p.trh = trh;
    p.swapRate = rate;
    JuggernautModel model(p);

    std::printf("-- analytical model (T_RH=%u, swap rate %u) --\n",
                trh, rate);
    const AttackResult naive = model.evaluateRrs(0);
    std::printf("random-guess only (k=%llu): %.3g days\n",
                static_cast<unsigned long long>(naive.k),
                naive.timeToBreakSec / 86400.0);
    const AttackResult best = model.bestRrs();
    std::printf("Juggernaut vs RRS: optimal N=%llu, k=%llu -> "
                "%.3g hours\n",
                static_cast<unsigned long long>(best.rounds),
                static_cast<unsigned long long>(best.k),
                best.timeToBreakSec / 3600.0);
    const AttackResult srs = model.evaluateSrs();
    std::printf("Juggernaut vs SRS: %.3g years\n",
                srs.timeToBreakSec / (86400.0 * 365));

    MonteCarloAttack mc(p, 2023);
    const MonteCarloResult v = mc.runRrs(best.rounds, 20000);
    std::printf("Monte-Carlo check (20k trials): %.3g hours "
                "(analytic %.3g)\n\n",
                v.meanTimeSec / 3600.0, best.timeToBreakSec / 3600.0);
}

void
cycleLevelView(srs::MitigationKind kind)
{
    using namespace srs;
    ExperimentConfig exp;
    exp.epochLen = 1'000'000;
    SystemConfig cfg = makeSystemConfig(exp, kind, 600, 6);
    cfg.numCores = 1;
    cfg.srsCfg.modelCounterTraffic = false;

    System sys(cfg);
    const RowId aggressor = 5000;
    sys.setTrace(0, std::make_unique<HammerTrace>(
                        sys.controller().addressMap(), 0, 0,
                        aggressor));
    sys.run(800'000);

    const auto &mit = sys.mitigation().stats();
    std::printf("%-10s home-slot acts %6llu | swaps %3llu | "
                "unswap-swaps %3llu | latent %4llu\n",
                mitigationKindName(kind),
                static_cast<unsigned long long>(
                    sys.controller().bankAt(0, 0).activationsOf(
                        aggressor)),
                static_cast<unsigned long long>(mit.get("swaps")),
                static_cast<unsigned long long>(
                    mit.get("unswap_swaps")),
                static_cast<unsigned long long>(
                    sys.controller().stats().get(
                        "latent_activations")));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace srs;
    const std::uint32_t trh =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                 : 4800;
    const std::uint32_t rate =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 6;

    analyticalView(trh, rate);

    std::printf("-- cycle-level ground truth (T_RH=600, hammering "
                "one logical row) --\n");
    cycleLevelView(MitigationKind::None);
    cycleLevelView(MitigationKind::Rrs);
    cycleLevelView(MitigationKind::Srs);
    cycleLevelView(MitigationKind::ScaleSrs);
    std::printf("\nRRS's home slot keeps accumulating latent "
                "activations; SRS/Scale-SRS cap it at ~T_S.\n");
    return 0;
}
