/**
 * @file
 * Suite-level performance sweep: for each benchmark suite, compare
 * the normalized performance of RRS, SRS and Scale-SRS at a chosen
 * T_RH — the workflow behind Figures 12, 14 and 15.
 *
 * Usage: workload_sweep [trh] [suite]
 *   trh:   Row Hammer threshold (default 1200)
 *   suite: GUPS | SPEC2K6 | SPEC2K17 | GAP | COMMERCIAL | PARSEC |
 *          BIOBENCH (default: one workload from each suite)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace srs;
    setQuietLogging(true);

    const std::uint32_t trh =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                 : 1200;
    ExperimentConfig exp;
    exp.cycles = 1'500'000;
    exp.epochLen = 800'000;

    std::vector<WorkloadProfile> workloads;
    if (argc > 2) {
        workloads = profilesOfSuite(argv[2]);
    } else {
        for (const std::string &suite : suiteNames())
            workloads.push_back(profilesOfSuite(suite).front());
    }

    std::printf("T_RH = %u, %zu workloads, %llu cycles per run\n\n",
                trh, workloads.size(),
                static_cast<unsigned long long>(exp.cycles));
    std::printf("%-16s%10s%12s%12s%12s\n", "workload", "base-IPC",
                "RRS(r6)", "SRS(r6)", "ScaleSRS(r3)");

    for (const WorkloadProfile &w : workloads) {
        const SystemConfig base =
            makeSystemConfig(exp, MitigationKind::None, trh, 6);
        const double baseIpc =
            runWorkload(base, w, exp).aggregateIpc;
        auto norm = [&](MitigationKind kind, std::uint32_t rate) {
            const SystemConfig cfg =
                makeSystemConfig(exp, kind, trh, rate);
            return runWorkload(cfg, w, exp).aggregateIpc / baseIpc;
        };
        std::printf("%-16s%10.3f%12.4f%12.4f%12.4f\n",
                    w.name.c_str(), baseIpc,
                    norm(MitigationKind::Rrs, 6),
                    norm(MitigationKind::Srs, 6),
                    norm(MitigationKind::ScaleSrs, 3));
        std::fflush(stdout);
    }
    return 0;
}
