/**
 * @file
 * Quickstart: build a Scale-SRS-protected system, run a swap-heavy
 * workload against it, and print the performance and security
 * headline numbers next to the unprotected baseline.
 *
 * Usage: quickstart [workload-name]   (default: gcc)
 */

#include <cstdio>
#include <string>

#include "security/attack_model.hh"
#include "sim/experiment.hh"
#include "trace/profiles.hh"

int
main(int argc, char **argv)
{
    using namespace srs;

    const std::string workload = argc > 1 ? argv[1] : "gcc";
    const WorkloadProfile &profile = profileByName(workload);

    ExperimentConfig exp;
    exp.cycles = 2'000'000;
    exp.epochLen = 1'600'000; // 0.5 ms epochs for a quick demo

    constexpr std::uint32_t trh = 1200;
    std::printf("workload: %s (suite %s), T_RH = %u\n",
                profile.name.c_str(), profile.suite.c_str(), trh);

    const SystemConfig base =
        makeSystemConfig(exp, MitigationKind::None, trh, 6);
    const RunResult baseRes = runWorkload(base, profile, exp);
    std::printf("%-10s ipc %.3f\n", "baseline", baseRes.aggregateIpc);

    struct Point { MitigationKind kind; std::uint32_t rate; };
    const Point points[] = {
        {MitigationKind::Rrs, 6},
        {MitigationKind::Srs, 6},
        {MitigationKind::ScaleSrs, 3},
    };
    for (const Point &p : points) {
        const SystemConfig cfg =
            makeSystemConfig(exp, p.kind, trh, p.rate);
        const RunResult res = runWorkload(cfg, profile, exp);
        std::printf("%-10s ipc %.3f  norm %.4f  swaps %llu  "
                    "unswap-swaps %llu  place-backs %llu  "
                    "latent-acts %llu  pinned %llu\n",
                    mitigationKindName(p.kind), res.aggregateIpc,
                    res.aggregateIpc / baseRes.aggregateIpc,
                    static_cast<unsigned long long>(res.swaps),
                    static_cast<unsigned long long>(res.unswapSwaps),
                    static_cast<unsigned long long>(res.placeBacks),
                    static_cast<unsigned long long>(
                        res.latentActivations),
                    static_cast<unsigned long long>(res.rowsPinned));
    }

    // Security headline: Juggernaut vs RRS and SRS (paper Sec. III-IV).
    AttackParams ap;
    ap.trh = 4800;
    ap.swapRate = 6;
    JuggernautModel model(ap);
    const AttackResult rrs = model.bestRrs();
    const AttackResult srs = model.evaluateSrs();
    std::printf("\nJuggernaut @ T_RH 4800, swap rate 6:\n");
    std::printf("  RRS best N=%llu -> time-to-break %.2f hours\n",
                static_cast<unsigned long long>(rrs.rounds),
                rrs.timeToBreakSec / 3600.0);
    std::printf("  SRS           -> time-to-break %.2f years\n",
                srs.timeToBreakSec / (3600.0 * 24 * 365));
    return 0;
}
