/**
 * @file
 * Defense comparison: run every implemented Row Hammer defense —
 * RRS, SRS, Scale-SRS, BlockHammer, AQUA and PARA — against (a) a
 * benign swap-heavy workload and (b) a targeted hammer attack, and
 * print performance, storage and ground-truth security side by side.
 *
 * This is the "which defense should I pick" tour of the library:
 * the same System API hosts all five, differing only in the
 * MitigationKind.  (PARA, the probabilistic VFM baseline, appears
 * in examples/half_double_study.cpp, where its weakness is the
 * point.)
 *
 * Usage: defense_comparison [workload-name]   (default: gcc)
 */

#include <cstdio>
#include <memory>
#include <string>

#include "sim/experiment.hh"
#include "trace/attack.hh"
#include "trace/profiles.hh"

namespace
{

using namespace srs;

/** One row of the comparison table. */
struct Contender
{
    MitigationKind kind;
    std::uint32_t swapRate;
};

constexpr Contender kContenders[] = {
    {MitigationKind::Rrs, 6},
    {MitigationKind::Srs, 6},
    {MitigationKind::ScaleSrs, 3},
    {MitigationKind::BlockHammer, 6},
    {MitigationKind::Aqua, 6},
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gcc";
    const WorkloadProfile &profile = profileByName(workload);

    ExperimentConfig exp;
    exp.cycles = 2'000'000;
    exp.epochLen = 1'600'000;
    constexpr std::uint32_t trh = 1200;

    std::printf("defense comparison on '%s', T_RH = %u\n\n",
                profile.name.c_str(), trh);

    const SystemConfig base =
        makeSystemConfig(exp, MitigationKind::None, trh, 6);
    const double baseIpc =
        runWorkload(base, profile, exp).aggregateIpc;

    std::printf("%-13s %8s %9s %10s %12s %12s\n", "defense", "norm",
                "swaps", "migr-acts", "SRAM/bank", "max-row-acts");
    for (const Contender &c : kContenders) {
        const SystemConfig cfg =
            makeSystemConfig(exp, c.kind, trh, c.swapRate);
        const RunResult res = runWorkload(cfg, profile, exp);

        // Rebuild once more to query storage (runWorkload consumes
        // the config; storage depends only on configuration).
        System probe(cfg);
        const std::uint64_t sramBits =
            probe.mitigation().storageBitsPerBank();

        if (sramBits > 0) {
            std::printf("%-13s %8.4f %9llu %10llu %10.1fKB %12llu\n",
                        mitigationKindName(c.kind),
                        res.aggregateIpc / baseIpc,
                        static_cast<unsigned long long>(res.swaps),
                        static_cast<unsigned long long>(
                            res.latentActivations),
                        static_cast<double>(sramBits) / 8.0 / 1024.0,
                        static_cast<unsigned long long>(
                            res.maxRowActivations));
        } else {
            // The functional RIT is unbounded by default; Table IV
            // (bench/table4_storage) carries the provisioned sizes.
            std::printf("%-13s %8.4f %9llu %10llu %12s %12llu\n",
                        mitigationKindName(c.kind),
                        res.aggregateIpc / baseIpc,
                        static_cast<unsigned long long>(res.swaps),
                        static_cast<unsigned long long>(
                            res.latentActivations),
                        "(table4)",
                        static_cast<unsigned long long>(
                            res.maxRowActivations));
        }
    }

    std::printf("\nunder a targeted hammer attack (one aggressor row per core):\n");
    std::printf("%-13s %8s %12s %12s\n", "defense", "norm",
                "max-row-acts", "verdict");
    for (const Contender &c : kContenders) {
        SystemConfig cfg =
            makeSystemConfig(exp, c.kind, trh, c.swapRate);
        System sys(cfg);
        for (CoreId core = 0; core < cfg.numCores; ++core) {
            // All cores gang up on channel 0 / bank 0 (the paper's
            // single-bank attack), each hammering its own row.
            sys.setTrace(core, std::make_unique<HammerTrace>(
                             sys.controller().addressMap(), 0, 0,
                             5000 + 16 * core));
        }
        sys.run(exp.cycles);
        const std::uint64_t worst = sys.maxEpochActivations();
        std::printf("%-13s %8.4f %12llu %12s\n",
                    mitigationKindName(c.kind),
                    sys.aggregateIpc() / baseIpc,
                    static_cast<unsigned long long>(worst),
                    worst >= trh ? "BROKEN" : "held");
    }

    std::printf("\nnote: 'BROKEN' means a physical row exceeded T_RH "
                "activations in one epoch\n(ground truth from the "
                "bank counters, not the defense's own view).\n");
    return 0;
}
