/**
 * @file
 * Half-double study: why victim-focused mitigation (VFM) motivates
 * row swapping (paper Sections I, II-E).
 *
 * Part 1 uses the analytical HalfDoubleModel to chart the VFM
 * dilemma: a small mitigation period T_V feeds the half-double
 * escalation, a large one loses to the classic distance-1 attack,
 * and as T_RH drops the safe band between them disappears.
 *
 * Part 2 demonstrates the mechanism live in the cycle-level
 * simulator: a PARA-protected bank is hammered and the victim rows'
 * ground-truth activation counters show the mitigation's own
 * refreshes accumulating as activations — the lever half-double
 * pulls.  The same experiment under SRS shows no such buildup.
 *
 * Usage: half_double_study
 */

#include <cstdio>
#include <memory>

#include "mitigation/para.hh"
#include "mitigation/srs.hh"
#include "security/half_double.hh"
#include "sim/experiment.hh"
#include "trace/attack.hh"
#include "tracker/misra_gries.hh"

namespace
{

using namespace srs;

void
analyticalPart()
{
    std::printf("==== analytical: the VFM dilemma ====\n");
    std::printf("%-8s %14s %16s %14s\n", "T_RH", "dist-1 safe",
                "half-double", "safe band");
    for (const std::uint32_t trh : {9600u, 4800u, 2400u, 1200u}) {
        HalfDoubleParams p;
        p.trh = trh;
        HalfDoubleModel m(p);
        // Double-sided distance-1 attacks need T_V < T_RH / 2;
        // half-double reaches distance 2 while T_V <= ACT_max/T_RH.
        const std::uint32_t d1Limit = trh / 2;
        const std::uint32_t hdLimit = m.maxVulnerablePeriod();
        const bool band = d1Limit > hdLimit;
        std::printf("%-8u %10s%-4u %12s%-4u %14s\n", trh,
                    "T_V < ", d1Limit, "T_V <= ", hdLimit,
                    band ? "exists" : "NONE");
    }
    std::printf("\na 'NONE' row means every T_V that stops the\n"
                "classic attack is itself half-double vulnerable —\n"
                "the scaling argument for aggressor-focused "
                "mitigation.\n\n");
}

void
simulatedPart()
{
    std::printf("==== simulated: refreshes feed the victims ====\n");
    const DramOrg org;
    const DramTiming timing = DramTiming::fromNs(DramTimingNs{});
    constexpr RowId aggr = 5000;
    constexpr int acts = 4000;

    // PARA with an aggressive refresh probability (small effective
    // T_V = 1/p = 50): victim rows soak up refresh activations.
    {
        MemoryController ctrl(org, timing);
        MisraGriesConfig tcfg;
        tcfg.ts = 200;
        tcfg.actMaxPerEpoch = 1000000;
        MisraGriesTracker tracker(tcfg);
        MitigationConfig mcfg;
        mcfg.trh = 1200;
        mcfg.swapRate = 6;
        ParaConfig pcfg;
        pcfg.refreshProbability = 0.02;
        Para para(ctrl, tracker, mcfg, pcfg);
        ctrl.setListener(&para);

        Cycle now = 0;
        for (int i = 0; i < acts; ++i) {
            ctrl.bankAt(0, 0).chargeActivation(aggr);
            para.onActivate(0, 0, aggr, now);
            while (ctrl.pendingMigrations(0, 0) > 0 ||
                   ctrl.bankAt(0, 0).blocked(now)) {
                ctrl.tick(now);
                now += timing.busClock;
            }
        }
        std::printf("PARA (p=0.02, eff. T_V=50), %d aggressor "
                    "acts:\n", acts);
        for (const RowId r :
             {aggr - 2, aggr - 1, aggr, aggr + 1, aggr + 2}) {
            std::printf("  row %+d: %6llu activations%s\n",
                        static_cast<int>(r) - static_cast<int>(aggr),
                        static_cast<unsigned long long>(
                            ctrl.bankAt(0, 0).activationsOf(r)),
                        r == aggr ? "  (aggressor)" : "");
        }
        std::printf("  -> the +-1 rows were 'refreshed' into "
                    "aggressors for the +-2 rows.\n\n");
    }

    // SRS: the mitigative action moves the row; neighbours of the
    // original location receive nothing.
    {
        MemoryController ctrl(org, timing);
        MisraGriesConfig tcfg;
        tcfg.ts = 200;
        tcfg.actMaxPerEpoch = 1000000;
        MisraGriesTracker tracker(tcfg);
        MitigationConfig mcfg;
        mcfg.trh = 1200;
        mcfg.swapRate = 6;
        Srs srsMit(ctrl, tracker, mcfg);
        ctrl.setListener(&srsMit);

        Cycle now = 0;
        for (int i = 0; i < acts; ++i) {
            const RowId phys = srsMit.remapRow(0, 0, aggr);
            ctrl.bankAt(0, 0).chargeActivation(phys);
            srsMit.onActivate(0, 0, phys, now);
            while (ctrl.pendingMigrations(0, 0) > 0 ||
                   ctrl.bankAt(0, 0).blocked(now)) {
                ctrl.tick(now);
                now += timing.busClock;
            }
        }
        std::printf("SRS (swap rate 6), same %d logical acts:\n",
                    acts);
        for (const RowId r :
             {aggr - 2, aggr - 1, aggr, aggr + 1, aggr + 2}) {
            std::printf("  row %+d: %6llu activations%s\n",
                        static_cast<int>(r) - static_cast<int>(aggr),
                        static_cast<unsigned long long>(
                            ctrl.bankAt(0, 0).activationsOf(r)),
                        r == aggr ? "  (original home)" : "");
        }
        std::printf("  -> swaps scatter the pressure; neighbours "
                    "of the home slot stay cold.\n");
    }
}

} // namespace

int
main()
{
    analyticalPart();
    simulatedPart();
    return 0;
}
