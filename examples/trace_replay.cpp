/**
 * @file
 * Trace export and replay: the bring-your-own-trace workflow.
 *
 * The paper's artifact consumes Pin-captured, cache-filtered traces
 * in the USIMM text format.  This example shows both directions:
 *
 *  1. export: synthesize a workload and write it as a USIMM trace
 *     file (a stand-in for the Pin toolchain);
 *  2. replay: load the file with FileTrace, run it through a
 *     Scale-SRS-protected system, and confirm the replay produces
 *     the same IPC as the in-memory source.
 *
 * Usage: trace_replay [workload-name] [trace-path]
 *        (defaults: gups /tmp/srs_example_trace.usimm)
 */

#include <cstdio>
#include <memory>
#include <string>

#include "sim/experiment.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace srs;

    const std::string workload = argc > 1 ? argv[1] : "gups";
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/srs_example_trace.usimm";
    const WorkloadProfile &profile = profileByName(workload);

    ExperimentConfig exp;
    exp.cycles = 1'500'000;
    exp.epochLen = 1'200'000;
    constexpr std::uint32_t trh = 1200;
    constexpr std::uint64_t records = 200'000;

    // --- export -----------------------------------------------------
    const SystemConfig cfg =
        makeSystemConfig(exp, MitigationKind::ScaleSrs, trh, 3);
    {
        AddressMap map(cfg.org);
        TraceWriter writer(path);
        SyntheticTrace source(profile, map, /*core=*/0, exp.seed);
        for (std::uint64_t i = 0; i < records; ++i)
            writer.append(source.next());
        std::printf("exported %llu records of '%s' to %s\n",
                    static_cast<unsigned long long>(
                        writer.recordsWritten()),
                    profile.name.c_str(), path.c_str());
    }

    // --- run the in-memory source -----------------------------------
    double synthIpc = 0.0;
    {
        System sys(cfg);
        for (CoreId core = 0; core < cfg.numCores; ++core) {
            sys.setTrace(core, std::make_unique<SyntheticTrace>(
                             profile, sys.controller().addressMap(),
                             0, exp.seed));
        }
        sys.run(exp.cycles);
        synthIpc = sys.aggregateIpc();
    }

    // --- replay the file --------------------------------------------
    double replayIpc = 0.0;
    std::uint64_t wraps = 0;
    {
        System sys(cfg);
        for (CoreId core = 0; core < cfg.numCores; ++core) {
            auto trace = std::make_unique<FileTrace>(path);
            if (core == 0)
                wraps = trace->size();
            sys.setTrace(core, std::move(trace));
        }
        sys.run(exp.cycles);
        replayIpc = sys.aggregateIpc();
    }

    std::printf("in-memory source ipc: %.4f\n", synthIpc);
    std::printf("file replay ipc:      %.4f  (trace: %llu records)\n",
                replayIpc,
                static_cast<unsigned long long>(wraps));
    const double delta =
        synthIpc > 0.0 ? replayIpc / synthIpc - 1.0 : 0.0;
    std::printf("delta: %+.2f%%  %s\n", 100.0 * delta,
                delta > -0.01 && delta < 0.01
                    ? "(replay is faithful)"
                    : "(differs: trace shorter than the run)");
    return 0;
}
